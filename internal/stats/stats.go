// Package stats provides the small statistical toolkit used throughout the
// reproduction: descriptive statistics, online (Welford) accumulators,
// Pearson correlation, relative standard deviation, percentiles, linear
// regression and histograms.
//
// The paper reports Pearson correlation coefficients between its network
// overhead metric and application execution time (r = 0.97 for the toy
// application, r = 0.92 for Parquet) and a relative standard deviation
// below 5% for repeated Parquet runs; this package implements exactly
// those computations so the experiment harness can regenerate them.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided (for example Pearson correlation of a single point).
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrMismatchedLengths is returned by bivariate computations when the two
// sample slices differ in length.
var ErrMismatchedLengths = errors.New("stats: mismatched sample lengths")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// RSD returns the relative standard deviation (coefficient of variation)
// of xs expressed as a percentage of the mean, as used by the paper's
// repeatability study ("Relative Standard Deviation ... less than five
// percent"). It returns an error when the mean is zero or when fewer than
// two samples are provided.
func RSD(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	m := Mean(xs)
	if m == 0 {
		return 0, errors.New("stats: zero mean, RSD undefined")
	}
	return 100 * StdDev(xs) / math.Abs(m), nil
}

// Pearson returns the Pearson product-moment correlation coefficient
// between xs and ys. The slices must have equal length and contain at
// least two points with nonzero variance in each dimension.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatchedLengths
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance, correlation undefined")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearRegression fits y = slope*x + intercept by ordinary least squares
// and returns the coefficients together with the coefficient of
// determination r².
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, ErrMismatchedLengths
	}
	n := len(xs)
	if n < 2 {
		return 0, 0, 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: zero variance in x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return slope, intercept, r2, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input need not be
// sorted; it is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
