package stats

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Histogram is a fixed-bucket histogram over a half-open interval
// [Low, High) with a configurable number of equal-width buckets plus
// implicit underflow and overflow buckets.
//
// It backs the /coalescing/time/parcel-arrival-histogram performance
// counter from the paper, which records the gap between parcel arrivals
// for a particular action. HPX encodes that counter's data as a flat
// int64 array: [low, high, bucket-width, b0, b1, ...]; Values reproduces
// that encoding.
//
// Histogram is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	low     float64
	high    float64
	width   float64
	buckets []uint64
	under   uint64
	over    uint64
	count   uint64
	sum     float64
}

// NewHistogram creates a histogram covering [low, high) with n buckets.
// It panics if high <= low or n <= 0; both indicate programmer error in
// counter configuration.
func NewHistogram(low, high float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram bucket count must be positive")
	}
	if high <= low {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{
		low:     low,
		high:    high,
		width:   (high - low) / float64(n),
		buckets: make([]uint64, n),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += x
	switch {
	case x < h.low:
		h.under++
	case x >= h.high:
		h.over++
	default:
		i := int((x - h.low) / h.width)
		if i >= len(h.buckets) { // guard against floating point edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// ObserveDuration records a duration sample in microseconds, the unit the
// paper's arrival-gap histogram uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Microsecond))
}

// ObserveBatch records a batch of samples under a single lock
// acquisition. Hot paths that would otherwise contend on the histogram
// mutex (the coalescer's striped Put) buffer samples locally and fold
// them in here; the result is identical to observing each sample
// individually.
func (h *Histogram) ObserveBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, x := range xs {
		h.count++
		h.sum += x
		switch {
		case x < h.low:
			h.under++
		case x >= h.high:
			h.over++
		default:
			i := int((x - h.low) / h.width)
			if i >= len(h.buckets) { // guard against floating point edge
				i = len(h.buckets) - 1
			}
			h.buckets[i]++
		}
	}
}

// Count returns the total number of observations, including under/overflow.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of all observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns a copy of the in-range bucket counts.
func (h *Histogram) Buckets() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// UnderOver returns the underflow and overflow counts.
func (h *Histogram) UnderOver() (under, over uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.under, h.over
}

// Values returns the histogram in HPX's flat int64 encoding:
// [low, high, bucket-width, bucket0, bucket1, ...]. Boundary values are
// truncated toward zero exactly as HPX does.
func (h *Histogram) Values() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, 0, 3+len(h.buckets))
	out = append(out, int64(h.low), int64(h.high), int64(h.width))
	for _, b := range h.buckets {
		out = append(out, int64(b))
	}
	return out
}

// Reset clears all buckets and totals, keeping the configured range.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.over, h.count, h.sum = 0, 0, 0, 0
}

// Quantile returns an approximate q-quantile (0<=q<=1) computed from the
// bucket midpoints. Underflow samples are treated as h.low and overflow
// samples as h.high.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q < 0 || q > 1 {
		return 0
	}
	target := q * float64(h.count)
	cum := float64(h.under)
	if cum >= target && h.under > 0 {
		return h.low
	}
	for i, b := range h.buckets {
		cum += float64(b)
		if cum >= target {
			return h.low + (float64(i)+0.5)*h.width
		}
	}
	return h.high
}

// String renders a compact ASCII view of the histogram, useful in the
// counter-dumping command line tools.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sb strings.Builder
	maxCount := h.under
	for _, b := range h.buckets {
		if b > maxCount {
			maxCount = b
		}
	}
	if h.over > maxCount {
		maxCount = h.over
	}
	bar := func(c uint64) string {
		if maxCount == 0 {
			return ""
		}
		n := int(40 * float64(c) / float64(maxCount))
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(&sb, "histogram [%g, %g) x%d, n=%d\n", h.low, h.high, len(h.buckets), h.count)
	if h.under > 0 {
		fmt.Fprintf(&sb, "  <%12g %8d %s\n", h.low, h.under, bar(h.under))
	}
	for i, b := range h.buckets {
		lo := h.low + float64(i)*h.width
		fmt.Fprintf(&sb, "  %13g %8d %s\n", lo, b, bar(b))
	}
	if h.over > 0 {
		fmt.Fprintf(&sb, "  >=%11g %8d %s\n", h.high, h.over, bar(h.over))
	}
	return sb.String()
}
