package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if got, want := o.Mean(), Mean(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := o.Variance(), Variance(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := o.Count(); got != uint64(len(xs)) {
		t.Errorf("Count = %v", got)
	}
	if o.Min() != 4 || o.Max() != 42 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
	if got, want := o.Sum(), Sum(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.Count() != 0 || o.Min() != 0 || o.Max() != 0 {
		t.Error("zero-value Online should report zeros")
	}
	s := o.Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestOnlineReset(t *testing.T) {
	var o Online
	o.Add(10)
	o.Add(20)
	o.Reset()
	if o.Count() != 0 || o.Mean() != 0 {
		t.Error("Reset did not clear accumulator")
	}
	o.Add(7)
	if o.Mean() != 7 {
		t.Errorf("post-reset Mean = %v", o.Mean())
	}
}

func TestOnlineAddN(t *testing.T) {
	var o Online
	o.Add(2)
	o.AddN(3, 12) // batch of 3 samples summing to 12, mean 4
	if got := o.Count(); got != 4 {
		t.Errorf("Count = %v, want 4", got)
	}
	if got, want := o.Mean(), 14.0/4.0; !almostEqual(got, want, 1e-9) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := o.Sum(), 14.0; !almostEqual(got, want, 1e-9) {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	// AddN with zero count is a no-op.
	o.AddN(0, 999)
	if o.Count() != 4 {
		t.Error("AddN(0) should be a no-op")
	}
}

func TestOnlineAddNIntoEmpty(t *testing.T) {
	var o Online
	o.AddN(4, 40)
	if o.Mean() != 10 || o.Count() != 4 {
		t.Errorf("AddN into empty: mean=%v count=%v", o.Mean(), o.Count())
	}
	if o.Min() != 10 || o.Max() != 10 {
		t.Errorf("AddN into empty: min=%v max=%v", o.Min(), o.Max())
	}
}

func TestOnlineConcurrent(t *testing.T) {
	var o Online
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				o.Add(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := o.Count(); got != workers*perWorker {
		t.Fatalf("Count = %v, want %v", got, workers*perWorker)
	}
	want := float64(perWorker+1) / 2
	if got := o.Mean(); !almostEqual(got, want, 1e-6) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestOnlineWelfordStability(t *testing.T) {
	// Large offset should not destroy variance precision.
	var o Online
	const offset = 1e9
	for _, x := range []float64{offset + 4, offset + 7, offset + 13, offset + 16} {
		o.Add(x)
	}
	if got, want := o.Variance(), Variance([]float64{4, 7, 13, 16}); !almostEqual(got, want, 1e-3) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestOnlineMatchesBatchProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		scale := 1.0
		if len(xs) > 0 {
			if m := math.Abs(Max(xs)) + math.Abs(Min(xs)); m > 1 {
				scale = m * m
			}
		}
		return almostEqual(o.Mean(), Mean(xs), 1e-6*scale) &&
			almostEqual(o.Variance(), Variance(xs), 1e-6*scale) &&
			o.Count() == uint64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotConsistency(t *testing.T) {
	var o Online
	for _, x := range []float64{1, 2, 3} {
		o.Add(x)
	}
	s := o.Snapshot()
	if s.Count != 3 || !almostEqual(s.Mean, 2, 1e-12) || !almostEqual(s.Sum, 6, 1e-12) {
		t.Errorf("snapshot = %+v", s)
	}
	if !almostEqual(s.StdDev, 1, 1e-12) {
		t.Errorf("snapshot stddev = %v, want 1", s.StdDev)
	}
	if s.Min != 1 || s.Max != 3 {
		t.Errorf("snapshot min/max = %v/%v", s.Min, s.Max)
	}
}
