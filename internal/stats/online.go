package stats

import (
	"math"
	"sync"
)

// Online accumulates samples one at a time using Welford's algorithm,
// providing numerically stable running mean and variance without storing
// the samples. It is the building block for the runtime's "average"
// performance counters (for example /coalescing/count/average-parcels-per-
// message and /threads/time/average-overhead), which must be updated from
// hot paths and queried concurrently.
//
// The zero value is an empty accumulator ready for use. Online is safe for
// concurrent use.
type Online struct {
	mu    sync.Mutex
	n     uint64
	mean  float64
	m2    float64
	min   float64
	max   float64
	total float64
}

// Add folds one sample into the accumulator.
func (o *Online) Add(x float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.total += x
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddN folds a pre-aggregated batch with the given count and sum into the
// accumulator, treating the batch as count samples each equal to
// sum/count. Variance contributions within the batch are lost; min/max are
// updated against the batch mean. AddN is used by counters that receive
// batched updates from worker threads.
func (o *Online) AddN(count uint64, sum float64) {
	if count == 0 {
		return
	}
	batchMean := sum / float64(count)
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n == 0 {
		o.min, o.max = batchMean, batchMean
	} else {
		if batchMean < o.min {
			o.min = batchMean
		}
		if batchMean > o.max {
			o.max = batchMean
		}
	}
	// Chan et al. parallel-update formula for combining a batch whose
	// internal variance is unknown (treated as zero).
	delta := batchMean - o.mean
	na := float64(o.n)
	nb := float64(count)
	o.n += count
	o.total += sum
	o.mean += delta * nb / (na + nb)
	o.m2 += delta * delta * na * nb / (na + nb)
}

// Count returns the number of samples accumulated so far.
func (o *Online) Count() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Mean returns the running mean, or 0 when no samples were added.
func (o *Online) Mean() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.mean
}

// Sum returns the running total of all samples.
func (o *Online) Sum() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.total
}

// Variance returns the running unbiased sample variance, or 0 when fewer
// than two samples were added.
func (o *Online) Variance() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running unbiased sample standard deviation.
func (o *Online) StdDev() float64 {
	return math.Sqrt(o.Variance())
}

// Min returns the smallest sample seen, or 0 when empty.
func (o *Online) Min() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest sample seen, or 0 when empty.
func (o *Online) Max() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Reset discards all accumulated state, returning the accumulator to its
// zero value. Counters with reset-at-read semantics call this after a
// snapshot.
func (o *Online) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.n, o.mean, o.m2, o.min, o.max, o.total = 0, 0, 0, 0, 0, 0
}

// Snapshot captures the accumulator's current state without resetting it.
type Snapshot struct {
	Count  uint64
	Mean   float64
	Sum    float64
	StdDev float64
	Min    float64
	Max    float64
}

// Snapshot returns a consistent snapshot of the accumulator.
func (o *Online) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Snapshot{Count: o.n, Mean: o.mean, Sum: o.total, Min: o.min, Max: o.max}
	if o.n >= 2 {
		s.StdDev = math.Sqrt(o.m2 / float64(o.n-1))
	}
	if o.n == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}
