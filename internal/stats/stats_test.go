package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4; sample variance is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestRSD(t *testing.T) {
	xs := []float64{100, 102, 98, 101, 99}
	rsd, err := RSD(xs)
	if err != nil {
		t.Fatalf("RSD: %v", err)
	}
	if rsd <= 0 || rsd > 5 {
		t.Errorf("RSD = %v, want small positive value", rsd)
	}
	if _, err := RSD([]float64{1}); err == nil {
		t.Error("RSD of one sample should fail")
	}
	if _, err := RSD([]float64{1, -1}); err == nil {
		t.Error("RSD with zero mean should fail")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err != ErrMismatchedLengths {
		t.Errorf("want ErrMismatchedLengths, got %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrInsufficientData {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance should fail")
	}
}

func TestPearsonKnownValue(t *testing.T) {
	xs := []float64{43, 21, 25, 42, 57, 59}
	ys := []float64{99, 65, 79, 75, 87, 81}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, 0.5298, 1e-3) {
		t.Errorf("Pearson = %v, want ~0.5298", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	// Property: |r| <= 1 for any inputs that do not error.
	f := func(pairs []struct{ X, Y float64 }) bool {
		if len(pairs) < 3 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.Abs(p.X) > 1e100 || math.Abs(p.Y) > 1e100 {
				return true
			}
			xs[i], ys[i] = p.X, p.Y
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r <= 1+1e-9 && r >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatalf("LinearRegression: %v", err)
	}
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) || !almostEqual(r2, 1, 1e-12) {
		t.Errorf("got slope=%v intercept=%v r2=%v, want 2, 1, 1", slope, intercept, r2)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	for _, c := range []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out of range percentile should fail")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 12 {
		t.Errorf("Sum = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}
