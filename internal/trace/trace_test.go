package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndRead(t *testing.T) {
	b := New(64)
	now := time.Now()
	b.Record(Event{Kind: KindTask, Name: "echo", Locality: 1, Start: now, Duration: time.Millisecond})
	b.Record(Event{Kind: KindMessage, Name: "send", Locality: 0, Start: now, Arg: 1024})
	if b.Len(KindTask) != 1 || b.Len(KindMessage) != 1 || b.Len(KindFlush) != 0 {
		t.Errorf("lens = %d/%d/%d", b.Len(KindTask), b.Len(KindMessage), b.Len(KindFlush))
	}
	es := b.Events(KindTask)
	if len(es) != 1 || es[0].Name != "echo" || es[0].Locality != 1 {
		t.Errorf("events = %+v", es)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	b := New(16)
	for i := 0; i < 40; i++ {
		b.Record(Event{Kind: KindFlush, Arg: int64(i)})
	}
	es := b.Events(KindFlush)
	if len(es) != 16 {
		t.Fatalf("len = %d", len(es))
	}
	// Oldest first: 24..39.
	for i, e := range es {
		if e.Arg != int64(24+i) {
			t.Fatalf("event %d arg = %d, want %d", i, e.Arg, 24+i)
		}
	}
	if b.Dropped(KindFlush) != 24 {
		t.Errorf("dropped = %d", b.Dropped(KindFlush))
	}
}

func TestNilBufferIsNoOp(t *testing.T) {
	var b *Buffer
	b.Record(Event{Kind: KindTask})
	b.RecordSpan(KindTask, "x", 0, time.Now(), 0)
	if b.Len(KindTask) != 0 || b.Events(KindTask) != nil || b.Dropped(KindTask) != 0 {
		t.Error("nil buffer should be inert")
	}
	var sb strings.Builder
	if err := b.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "[]" {
		t.Errorf("nil trace = %q", sb.String())
	}
	if b.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestRecordSpan(t *testing.T) {
	b := New(16)
	start := time.Now().Add(-2 * time.Millisecond)
	b.RecordSpan(KindPhase, "phase 1", 0, start, 7)
	es := b.Events(KindPhase)
	if len(es) != 1 || es[0].Duration < 2*time.Millisecond || es[0].Arg != 7 {
		t.Errorf("span = %+v", es)
	}
}

func TestChromeTraceExport(t *testing.T) {
	b := New(16)
	b.Record(Event{Kind: KindTask, Name: "t1", Locality: 2, Start: time.Now(), Duration: time.Millisecond})
	b.Record(Event{Kind: KindMessage, Name: "m1", Locality: 0, Start: time.Now()})
	var sb strings.Builder
	if err := b.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	byName := map[string]map[string]any{}
	for _, e := range events {
		byName[e["name"].(string)] = e
	}
	if byName["t1"]["cat"] != "task" || byName["t1"]["ph"] != "X" || byName["t1"]["pid"] != float64(2) {
		t.Errorf("t1 = %v", byName["t1"])
	}
	if byName["m1"]["ph"] != "i" { // instantaneous
		t.Errorf("m1 = %v", byName["m1"])
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindTask: "task", KindMessage: "message", KindFlush: "flush",
		KindPhase: "phase", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
	// Out-of-range kinds are ignored, not panics.
	b := New(16)
	b.Record(Event{Kind: Kind(50)})
	if b.Len(Kind(50)) != 0 {
		t.Error("bad kind recorded")
	}
}

func TestConcurrentRecording(t *testing.T) {
	b := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Record(Event{Kind: Kind(i % int(numKinds)), Locality: w})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for k := Kind(0); k < numKinds; k++ {
		total += b.Len(k)
		total += int(b.Dropped(k))
	}
	if total != 8*500 {
		t.Errorf("recorded+dropped = %d, want 4000", total)
	}
}

func TestMinimumCapacity(t *testing.T) {
	b := New(1)
	for i := 0; i < 20; i++ {
		b.Record(Event{Kind: KindTask})
	}
	if b.Len(KindTask) != 16 {
		t.Errorf("len = %d, want clamped capacity 16", b.Len(KindTask))
	}
}
