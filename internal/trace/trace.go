// Package trace provides a low-overhead event tracer for the runtime:
// bounded in-memory ring buffers per category, recording task execution,
// message transmission and coalescing-flush events, with export to the
// Chrome trace-event JSON format (chrome://tracing, Perfetto).
//
// The paper's methodology is built on introspection — aggregate counters
// summarize behaviour, and the tracer complements them with per-event
// detail used when developing and debugging the coalescing layer itself
// (HPX integrates APEX for the same purpose). Tracing is optional: a nil
// *Buffer disables every probe at the cost of one branch.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies trace events.
type Kind uint8

const (
	// KindTask marks lightweight-task execution.
	KindTask Kind = iota
	// KindMessage marks wire-message transmission or receipt.
	KindMessage
	// KindFlush marks coalescing-queue flushes.
	KindFlush
	// KindPhase marks application phase boundaries.
	KindPhase
	// KindRetransmit marks reliability-layer frame retransmissions.
	KindRetransmit
	// KindLinkDown marks failure events: a link declared down after an
	// exhausted retry budget (recorded at both the sending and the
	// receiving locality, so asymmetric partitions are observable from
	// both ends), a health-monitor suspicion crossing its threshold,
	// and a locality declared dead.
	KindLinkDown
	numKinds
)

// String returns the kind's Chrome-trace category label.
func (k Kind) String() string {
	switch k {
	case KindTask:
		return "task"
	case KindMessage:
		return "message"
	case KindFlush:
		return "flush"
	case KindPhase:
		return "phase"
	case KindRetransmit:
		return "retransmit"
	case KindLinkDown:
		return "link-down"
	default:
		return "unknown"
	}
}

// Event is one trace record.
type Event struct {
	// Kind is the event category.
	Kind Kind
	// Name labels the event (action name, flush reason, phase label).
	Name string
	// Locality is the locality the event occurred on.
	Locality int
	// Start and Duration bound the event; instantaneous events have zero
	// Duration.
	Start    time.Time
	Duration time.Duration
	// Arg carries one numeric payload (parcel count, byte size).
	Arg int64
}

// Buffer is a fixed-capacity ring of events per kind; when full, the
// oldest events of that kind are overwritten, so a long run keeps its
// most recent history without unbounded memory. The zero value is not
// usable; call New.
type Buffer struct {
	mu    sync.Mutex
	rings [numKinds][]Event
	next  [numKinds]int
	full  [numKinds]bool
	drops [numKinds]uint64
	start time.Time
}

// New creates a buffer holding up to perKind events of each kind
// (minimum 16).
func New(perKind int) *Buffer {
	if perKind < 16 {
		perKind = 16
	}
	b := &Buffer{start: time.Now()}
	for k := range b.rings {
		b.rings[k] = make([]Event, perKind)
	}
	return b
}

// Record appends an event. Record on a nil buffer is a no-op, so probes
// can be left in place unconditionally.
func (b *Buffer) Record(e Event) {
	if b == nil {
		return
	}
	if e.Kind >= numKinds {
		return
	}
	b.mu.Lock()
	k := e.Kind
	if b.full[k] {
		b.drops[k]++
	}
	b.rings[k][b.next[k]] = e
	b.next[k]++
	if b.next[k] == len(b.rings[k]) {
		b.next[k] = 0
		b.full[k] = true
	}
	b.mu.Unlock()
}

// RecordSpan is a convenience for an event that just finished.
func (b *Buffer) RecordSpan(kind Kind, name string, locality int, start time.Time, arg int64) {
	if b == nil {
		return
	}
	b.Record(Event{
		Kind: kind, Name: name, Locality: locality,
		Start: start, Duration: time.Since(start), Arg: arg,
	})
}

// Events returns all buffered events of the given kind, oldest first.
func (b *Buffer) Events(kind Kind) []Event {
	if b == nil || kind >= numKinds {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ring := b.rings[kind]
	if !b.full[kind] {
		out := make([]Event, b.next[kind])
		copy(out, ring[:b.next[kind]])
		return out
	}
	out := make([]Event, 0, len(ring))
	out = append(out, ring[b.next[kind]:]...)
	out = append(out, ring[:b.next[kind]]...)
	return out
}

// Dropped returns how many events of the kind were overwritten.
func (b *Buffer) Dropped(kind Kind) uint64 {
	if b == nil || kind >= numKinds {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops[kind]
}

// Len returns the number of buffered events of the kind.
func (b *Buffer) Len(kind Kind) int {
	if b == nil || kind >= numKinds {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full[kind] {
		return len(b.rings[kind])
	}
	return b.next[kind]
}

// chromeEvent is the trace-event JSON schema (subset).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports every buffered event as a Chrome trace-event
// JSON array. Localities map to process ids; kinds to thread ids, so the
// viewer lays out one row per (locality, kind).
func (b *Buffer) WriteChromeTrace(w io.Writer) error {
	if b == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	var all []chromeEvent
	for k := Kind(0); k < numKinds; k++ {
		for _, e := range b.Events(k) {
			ce := chromeEvent{
				Name: e.Name,
				Cat:  k.String(),
				Ph:   "X",
				TS:   float64(e.Start.Sub(b.start)) / float64(time.Microsecond),
				Dur:  float64(e.Duration) / float64(time.Microsecond),
				PID:  e.Locality,
				TID:  int(k),
			}
			if e.Duration == 0 {
				ce.Ph = "i"
			}
			if e.Arg != 0 {
				ce.Args = map[string]any{"arg": e.Arg}
			}
			all = append(all, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(all)
}

// Summary renders per-kind counts for quick inspection.
func (b *Buffer) Summary() string {
	if b == nil {
		return "trace: disabled"
	}
	s := "trace:"
	for k := Kind(0); k < numKinds; k++ {
		s += fmt.Sprintf(" %s=%d(+%d dropped)", k, b.Len(k), b.Dropped(k))
	}
	return s
}
