package network

import (
	"math/rand"
	"sync"
	"time"
)

// LinkFaults configures fault injection for one direction of one link
// (or, as a FaultPlan default, for every link without an override). All
// rates are probabilities in [0, 1]; they are evaluated in the order
// partition, burst loss, drop, duplicate, delay, reorder, and at most one
// fault fires per message.
type LinkFaults struct {
	// Partition drops every message on the link (a one-way partition:
	// the reverse direction is configured independently).
	Partition bool
	// DropRate is the per-message probability of silent loss.
	DropRate float64
	// DuplicateRate is the per-message probability of delivering twice.
	DuplicateRate float64
	// DelayRate is the per-message probability of adding Delay extra
	// delivery latency.
	DelayRate float64
	// Delay is the extra latency applied by DelayRate faults
	// (default 500µs).
	Delay time.Duration
	// ReorderRate is the per-message probability of holding the message
	// back until the next message on the link overtakes it.
	ReorderRate float64
	// BurstEvery and BurstLen inject correlated loss: of every BurstEvery
	// consecutive messages on the link, the first BurstLen are dropped.
	// Zero disables bursts.
	BurstEvery int
	BurstLen   int
}

// DefaultFaultDelay is the extra latency of a delay fault when
// LinkFaults.Delay is zero.
const DefaultFaultDelay = 500 * time.Microsecond

// FaultPlan is a composable, deterministic fault model: a default
// LinkFaults applied to every link plus per-link overrides, driven by a
// seeded PRNG so chaos runs are reproducible. Compile it into a fabric
// with Hook:
//
//	plan := network.NewFaultPlan(1)
//	plan.SetDefault(network.LinkFaults{DropRate: 0.05, ReorderRate: 0.05})
//	plan.SetLink(0, 1, network.LinkFaults{Partition: true})
//	fabric.SetFaultHook(plan.Hook())
//
// FaultPlan is safe for concurrent use, including reconfiguration while
// the fabric is sending.
type FaultPlan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	def   LinkFaults
	links map[linkKey]*linkFaultState

	// crashed marks localities that have crash-stopped: every message to
	// or from them is silently dropped on the wire, modeling a process
	// that died without closing its connections. crashAt arms a deferred
	// crash triggered by the locality's own send count.
	crashed map[int]bool
	crashAt map[int]uint64
	sends   map[int]uint64

	// events are time-scheduled link reconfigurations (SetLinkAt /
	// ClearLinkAt and the partition/heal helpers built on them), sorted
	// by due time and applied lazily inside decide. clock anchors the
	// elapsed-time axis: StartClock sets it explicitly, otherwise the
	// first decide after events exist starts it.
	events []faultEvent
	clock  time.Time

	injected uint64 // messages that received a non-deliver fault
}

// faultEvent is one scheduled link reconfiguration.
type faultEvent struct {
	at     time.Duration // elapsed time since the plan's clock started
	src    int
	dst    int
	clear  bool // true: remove the override; false: install faults
	faults LinkFaults
}

// linkFaultState is the per-link mutable state: the override (if any) and
// the message counter driving burst loss.
type linkFaultState struct {
	faults LinkFaults
	count  int
}

// NewFaultPlan creates an empty plan (all messages deliver) with a
// deterministic PRNG seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:     rand.New(rand.NewSource(seed)),
		links:   make(map[linkKey]*linkFaultState),
		crashed: make(map[int]bool),
		crashAt: make(map[int]uint64),
		sends:   make(map[int]uint64),
	}
}

// SetDefault installs the fault configuration for links without an
// override. Burst-loss counters of default-configured links restart.
func (p *FaultPlan) SetDefault(f LinkFaults) {
	p.mu.Lock()
	p.def = f
	p.mu.Unlock()
}

// SetLink installs a per-link override for messages from src to dst.
func (p *FaultPlan) SetLink(src, dst int, f LinkFaults) {
	p.mu.Lock()
	p.links[linkKey{src, dst}] = &linkFaultState{faults: f}
	p.mu.Unlock()
}

// ClearLink removes the per-link override, reverting src->dst to the
// default configuration.
func (p *FaultPlan) ClearLink(src, dst int) {
	p.mu.Lock()
	delete(p.links, linkKey{src, dst})
	p.mu.Unlock()
}

// PartitionPair partitions both directions between a and b immediately:
// the symmetric two-way cut a real network split produces, without
// hand-writing each one-way override.
func (p *FaultPlan) PartitionPair(a, b int) {
	p.SetLink(a, b, LinkFaults{Partition: true})
	p.SetLink(b, a, LinkFaults{Partition: true})
}

// HealPair removes both directions of a PartitionPair cut immediately,
// reverting the links to the default configuration.
func (p *FaultPlan) HealPair(a, b int) {
	p.ClearLink(a, b)
	p.ClearLink(b, a)
}

// StartClock anchors the plan's elapsed-time axis for scheduled events
// (SetLinkAt etc.) at the given instant. Calling it is optional — the
// first fault decision after events exist starts the clock implicitly —
// but tests and multi-process runs call it explicitly so "at 300ms"
// means 300ms from a known point rather than from first traffic.
func (p *FaultPlan) StartClock(now time.Time) {
	p.mu.Lock()
	p.clock = now
	p.mu.Unlock()
}

// SetLinkAt schedules SetLink(src, dst, f) to take effect once the
// plan's clock has run for at. Events apply lazily, on the first fault
// decision at or after their due time, so precision is bounded by
// traffic cadence — fine for partitions, meaningless for sub-tick
// schedules.
func (p *FaultPlan) SetLinkAt(src, dst int, at time.Duration, f LinkFaults) {
	p.scheduleEvent(faultEvent{at: at, src: src, dst: dst, faults: f})
}

// ClearLinkAt schedules ClearLink(src, dst) at elapsed time at.
func (p *FaultPlan) ClearLinkAt(src, dst int, at time.Duration) {
	p.scheduleEvent(faultEvent{at: at, src: src, dst: dst, clear: true})
}

// PartitionPairAt schedules a symmetric two-way partition between a and
// b at elapsed time at.
func (p *FaultPlan) PartitionPairAt(a, b int, at time.Duration) {
	p.SetLinkAt(a, b, at, LinkFaults{Partition: true})
	p.SetLinkAt(b, a, at, LinkFaults{Partition: true})
}

// HealPairAt schedules the heal of a symmetric partition between a and
// b at elapsed time at.
func (p *FaultPlan) HealPairAt(a, b int, at time.Duration) {
	p.ClearLinkAt(a, b, at)
	p.ClearLinkAt(b, a, at)
}

// FlapPair schedules cycles alternating partition/heal between a and b:
// partition at start, heal at start+period/2, partition at start+period,
// ... — the pathological oscillation that stresses suspicion hysteresis
// and rejoin convergence.
func (p *FaultPlan) FlapPair(a, b int, start, period time.Duration, cycles int) {
	for i := 0; i < cycles; i++ {
		at := start + time.Duration(i)*period
		p.PartitionPairAt(a, b, at)
		p.HealPairAt(a, b, at+period/2)
	}
}

func (p *FaultPlan) scheduleEvent(e faultEvent) {
	p.mu.Lock()
	// Insertion sort keeps events due-ordered; schedules are small.
	i := len(p.events)
	for i > 0 && p.events[i-1].at > e.at {
		i--
	}
	p.events = append(p.events, faultEvent{})
	copy(p.events[i+1:], p.events[i:])
	p.events[i] = e
	p.mu.Unlock()
}

// applyDueLocked applies every scheduled event whose due time has
// passed. Called with p.mu held from decide.
func (p *FaultPlan) applyDueLocked(now time.Time) {
	if len(p.events) == 0 {
		return
	}
	if p.clock.IsZero() {
		p.clock = now
	}
	elapsed := now.Sub(p.clock)
	n := 0
	for n < len(p.events) && p.events[n].at <= elapsed {
		e := p.events[n]
		if e.clear {
			delete(p.links, linkKey{e.src, e.dst})
		} else {
			p.links[linkKey{e.src, e.dst}] = &linkFaultState{faults: e.faults}
		}
		n++
	}
	p.events = p.events[n:]
}

// Crash marks a locality as crash-stopped, effective immediately: every
// subsequent message to or from it is silently dropped at the wire, on
// both directions of every link, modeling a process death. Crash-stop is
// permanent — there is no ClearCrash, matching the crash-stop (no
// recovery) failure model the health subsystem assumes.
func (p *FaultPlan) Crash(locality int) {
	p.mu.Lock()
	p.crashed[locality] = true
	delete(p.crashAt, locality)
	p.mu.Unlock()
}

// CrashAt arms a deferred crash: the locality crash-stops immediately
// after transmitting afterSends more messages (0 crashes on its next
// send attempt, which is itself dropped). The trigger counts only sends
// originated by the locality, so the crash lands at a deterministic point
// in its own execution regardless of inbound traffic.
func (p *FaultPlan) CrashAt(locality int, afterSends uint64) {
	p.mu.Lock()
	p.crashAt[locality] = p.sends[locality] + afterSends
	p.mu.Unlock()
}

// Crashed reports whether the locality has crash-stopped.
func (p *FaultPlan) Crashed(locality int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed[locality]
}

// Injected returns how many messages received a non-deliver fault.
func (p *FaultPlan) Injected() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Hook compiles the plan into a FaultHook for Fabric.SetFaultHook.
func (p *FaultPlan) Hook() FaultHook {
	return p.decide
}

func (p *FaultPlan) decide(src, dst int, payload []byte) Fault {
	p.mu.Lock()
	defer p.mu.Unlock()

	p.applyDueLocked(time.Now())

	// Crash-stop is evaluated before every other fault class: a dead
	// locality neither sends nor receives, and the armed-crash trigger
	// fires on the locality's own send count so chaos runs hit a
	// deterministic point in its execution.
	if at, ok := p.crashAt[src]; ok {
		if p.sends[src] >= at {
			p.crashed[src] = true
			delete(p.crashAt, src)
		}
	}
	p.sends[src]++
	if p.crashed[src] || p.crashed[dst] {
		p.injected++
		return Fault{Action: FaultDrop}
	}

	f := p.def
	var st *linkFaultState
	if override, ok := p.links[linkKey{src, dst}]; ok {
		f = override.faults
		st = override
	}

	if f.Partition {
		p.injected++
		return Fault{Action: FaultDrop}
	}
	if f.BurstEvery > 0 && f.BurstLen > 0 {
		if st == nil {
			// Burst state for a default-configured link still needs a
			// per-link counter, lazily materialized as an override that
			// mirrors the default.
			st = &linkFaultState{faults: f}
			p.links[linkKey{src, dst}] = st
		}
		pos := st.count % f.BurstEvery
		st.count++
		if pos < f.BurstLen {
			p.injected++
			return Fault{Action: FaultDrop}
		}
	}

	r := p.rng.Float64()
	switch {
	case r < f.DropRate:
		p.injected++
		return Fault{Action: FaultDrop}
	case r < f.DropRate+f.DuplicateRate:
		p.injected++
		return Fault{Action: FaultDuplicate}
	case r < f.DropRate+f.DuplicateRate+f.DelayRate:
		p.injected++
		d := f.Delay
		if d <= 0 {
			d = DefaultFaultDelay
		}
		return Fault{Action: FaultDelay, Delay: d}
	case r < f.DropRate+f.DuplicateRate+f.DelayRate+f.ReorderRate:
		p.injected++
		return Fault{Action: FaultReorder}
	}
	return Fault{Action: FaultDeliver}
}
