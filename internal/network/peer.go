package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PeerFabric implements Fabric for one locality of a multi-process
// cluster: unlike TCPFabric (which listens for every locality of an
// in-process runtime on pre-known ephemeral ports), a PeerFabric owns a
// single listener for its own locality and reaches the others through an
// explicit peer-address table filled in at runtime — by configuration,
// by the cluster join protocol, or by gossip as late joiners appear.
//
// Connections carry a hello handshake (magic, protocol version, cluster
// size, locality id) so an accepted connection is bound to a verified
// peer identity before any frame is believed; after the hello, framing is
// identical to TCPFabric's (uint32 source locality, uint32 payload
// length, payload), and every frame's source must match the hello or the
// connection is dropped. Dialing is lazy, on first send to a peer; a
// peer with no installed address — or whose address refuses the dial —
// fails the send with ErrPeerUnreachable, which a reliability layer above
// treats as transient loss and retries.
type PeerFabric struct {
	n    int
	self int

	ln        net.Listener
	advertise string
	handler   atomic.Pointer[Handler]

	mu       sync.Mutex
	addrs    []string
	conns    map[int]net.Conn
	accepted map[net.Conn]struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	fault    atomic.Pointer[FaultHook]

	msgs    atomic.Uint64
	bytes   atomic.Uint64
	msgsIn  atomic.Uint64
	bytesIn atomic.Uint64
	drops   atomic.Uint64
	dupes   atomic.Uint64
	delays  atomic.Uint64
	badHs   atomic.Uint64
}

// PeerConfig configures one locality's PeerFabric.
type PeerConfig struct {
	// Localities is the cluster size (total locality count).
	Localities int
	// Self is the locality this process hosts.
	Self int
	// Bind is the listen address (default "127.0.0.1:0").
	Bind string
	// Advertise is the address other nodes dial to reach this one;
	// defaults to the resolved listen address. Set it when the bind
	// address is not reachable as-is (e.g. binding 0.0.0.0).
	Advertise string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
}

const (
	helloMagic   = 0xA9
	helloVersion = 1
	helloSize    = 10 // magic, version, u32 locality, u32 cluster size
	peerDialWait = 2 * time.Second
)

// NewPeerFabric binds the listener and starts accepting. No peer
// addresses are known initially; install them with SetPeerAddr.
func NewPeerFabric(cfg PeerConfig) (*PeerFabric, error) {
	if cfg.Localities <= 0 || cfg.Self < 0 || cfg.Self >= cfg.Localities {
		return nil, fmt.Errorf("network: peer fabric self=%d n=%d invalid", cfg.Self, cfg.Localities)
	}
	bind := cfg.Bind
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("network: peer fabric listen %q: %w", bind, err)
	}
	f := &PeerFabric{
		n:         cfg.Localities,
		self:      cfg.Self,
		ln:        ln,
		advertise: cfg.Advertise,
		addrs:     make([]string, cfg.Localities),
		conns:     make(map[int]net.Conn),
		accepted:  make(map[net.Conn]struct{}),
	}
	if f.advertise == "" {
		f.advertise = ln.Addr().String()
	}
	f.addrs[cfg.Self] = f.advertise
	f.wg.Add(1)
	go f.accept()
	return f, nil
}

// Addr returns the address other nodes should dial to reach this
// locality (the advertise address, with ephemeral ports resolved).
func (f *PeerFabric) Addr() string { return f.advertise }

// Self returns the hosted locality id.
func (f *PeerFabric) Self() int { return f.self }

// SetPeerAddr installs (or updates) the dial address for a peer
// locality. Installing an address never disturbs an established
// connection; it takes effect at the next dial.
func (f *PeerFabric) SetPeerAddr(id int, addr string) error {
	if id < 0 || id >= f.n {
		return fmt.Errorf("%w: peer %d of %d", ErrBadLocality, id, f.n)
	}
	if id == f.self || addr == "" {
		return nil
	}
	f.mu.Lock()
	f.addrs[id] = addr
	f.mu.Unlock()
	return nil
}

// PeerAddr returns the installed address for a peer ("" if unknown).
func (f *PeerFabric) PeerAddr(id int) string {
	if id < 0 || id >= f.n {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addrs[id]
}

// Localities implements Fabric.
func (f *PeerFabric) Localities() int { return f.n }

// Model implements Fabric; real sockets have no synthetic cost model.
func (f *PeerFabric) Model() CostModel { return CostModel{} }

// SetHandler implements Fabric. Only the hosted locality receives
// traffic in this process; handlers for other ids are rejected to catch
// miswired runtimes early.
func (f *PeerFabric) SetHandler(dst int, h Handler) {
	if dst != f.self {
		panic(fmt.Sprintf("network: peer fabric hosts locality %d, not %d", f.self, dst))
	}
	f.handler.Store(&h)
}

// SetFaultHook installs (or removes) a fault-injection hook, mirroring
// the other fabrics: drops skip the write, duplicates write twice,
// delays write from a timer goroutine. The hook is additionally
// consulted on *receive* (as hook(peer, self, payload)), where only
// FaultDrop is honored — that is what lets a single process's FaultPlan
// express a two-way partition when the other end of the link belongs to
// a different process.
func (f *PeerFabric) SetFaultHook(h FaultHook) {
	if h == nil {
		f.fault.Store(nil)
		return
	}
	f.fault.Store(&h)
}

// Stats implements Fabric.
func (f *PeerFabric) Stats() Stats {
	return Stats{
		MessagesSent:     f.msgs.Load(),
		BytesSent:        f.bytes.Load(),
		MessagesReceived: f.msgsIn.Load(),
		BytesReceived:    f.bytesIn.Load(),
		Dropped:          f.drops.Load(),
		Duplicated:       f.dupes.Load(),
		Delayed:          f.delays.Load(),
	}
}

// BadHandshakes returns how many inbound connections were rejected for
// an invalid or mismatched hello.
func (f *PeerFabric) BadHandshakes() uint64 { return f.badHs.Load() }

func (f *PeerFabric) accept() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed.Load() {
			f.mu.Unlock()
			_ = conn.Close()
			return
		}
		f.accepted[conn] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go f.serve(conn)
	}
}

// serve validates one inbound connection's hello, then reads frames
// until the connection dies or the fabric closes.
func (f *PeerFabric) serve(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		_ = conn.Close()
		f.mu.Lock()
		delete(f.accepted, conn)
		f.mu.Unlock()
	}()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hello [helloSize]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		f.badHs.Add(1)
		return
	}
	peer, ok := f.checkHello(hello)
	if !ok {
		f.badHs.Add(1)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	br := bufio.NewReaderSize(conn, tcpReadBufferSize)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		src := int(binary.LittleEndian.Uint32(hdr[0:4]))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if src != peer || n > maxPeerFrame {
			// A frame claiming a source other than the authenticated hello
			// identity (or an absurd length) marks the stream hostile or
			// corrupt; drop the connection rather than believe it.
			f.badHs.Add(1)
			return
		}
		payload := GetPayload(int(n))
		if _, err := io.ReadFull(br, payload); err != nil {
			PutPayload(payload)
			return
		}
		if f.closed.Load() {
			PutPayload(payload)
			return
		}
		// Receive-side fault evaluation: a process can only apply
		// sender-side faults to its own outbound traffic, so a two-way
		// partition in a multi-process cluster needs the receiving end
		// to drop inbound frames from the partitioned peer as well. Only
		// FaultDrop is honored here — duplicate/delay/reorder remain
		// sender-side concerns.
		if hook := f.fault.Load(); hook != nil {
			if (*hook)(src, f.self, payload).Action == FaultDrop {
				f.drops.Add(1)
				PutPayload(payload)
				continue
			}
		}
		if hp := f.handler.Load(); hp != nil {
			f.msgsIn.Add(1)
			f.bytesIn.Add(uint64(len(payload)))
			(*hp)(src, payload)
		} else {
			PutPayload(payload)
		}
	}
}

// maxPeerFrame bounds a single frame arriving from the network; anything
// larger is treated as stream corruption. Coalesced bundles are tens of
// kilobytes; 64 MiB leaves three orders of magnitude of headroom.
const maxPeerFrame = 64 << 20

func (f *PeerFabric) checkHello(h [helloSize]byte) (int, bool) {
	if h[0] != helloMagic || h[1] != helloVersion {
		return 0, false
	}
	peer := int(binary.LittleEndian.Uint32(h[2:6]))
	size := int(binary.LittleEndian.Uint32(h[6:10]))
	if size != f.n || peer < 0 || peer >= f.n || peer == f.self {
		return 0, false
	}
	return peer, true
}

// Send implements Fabric. src must be the hosted locality. A send to
// self delivers inline (the runtime normally short-circuits local
// invocations above the fabric, but a reliability layer may still route
// self traffic here).
func (f *PeerFabric) Send(src, dst int, payload []byte) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if src != f.self || dst < 0 || dst >= f.n {
		return fmt.Errorf("%w: src=%d dst=%d (hosting %d of %d)", ErrBadLocality, src, dst, f.self, f.n)
	}
	if dst == f.self {
		if hp := f.handler.Load(); hp != nil {
			f.msgs.Add(1)
			f.bytes.Add(uint64(len(payload)))
			f.msgsIn.Add(1)
			f.bytesIn.Add(uint64(len(payload)))
			(*hp)(src, payload)
			return nil
		}
		PutPayload(payload)
		return nil
	}

	duplicate := false
	if hook := f.fault.Load(); hook != nil {
		fault := (*hook)(src, dst, payload)
		switch fault.Action {
		case FaultDrop:
			f.drops.Add(1)
			PutPayload(payload)
			return nil
		case FaultDuplicate:
			f.dupes.Add(1)
			duplicate = true
		case FaultDelay, FaultReorder:
			f.delays.Add(1)
			delay := fault.Delay
			if delay <= 0 {
				delay = DefaultFaultDelay
			}
			time.AfterFunc(delay, func() {
				if f.closed.Load() {
					PutPayload(payload)
					return
				}
				if err := f.writeFrame(dst, payload); err == nil {
					f.msgs.Add(1)
					f.bytes.Add(uint64(len(payload)))
				}
				PutPayload(payload)
			})
			return nil
		}
	}

	if err := f.writeFrame(dst, payload); err != nil {
		return err
	}
	if duplicate {
		_ = f.writeFrame(dst, payload)
	}
	PutPayload(payload)
	f.msgs.Add(1)
	f.bytes.Add(uint64(len(payload)))
	return nil
}

// writeFrame frames and writes one message on the cached (dialing if
// needed) connection toward dst. A write error evicts the connection so
// the next send redials; the message is reported lost to the caller.
func (f *PeerFabric) writeFrame(dst int, payload []byte) error {
	conn, err := f.getConn(dst)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(f.self))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}

	f.mu.Lock()
	_, err = bufs.WriteTo(conn)
	if err != nil {
		if f.conns[dst] == conn {
			delete(f.conns, dst)
		}
		_ = conn.Close()
	}
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("network: peer send %d->%d: %w", f.self, dst, err)
	}
	return nil
}

// getConn returns the established connection to dst, dialing and
// handshaking if none is cached. Dial failures and unknown addresses are
// ErrPeerUnreachable; no stale slot is left behind on failure.
func (f *PeerFabric) getConn(dst int) (net.Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.conns[dst]; ok {
		return c, nil
	}
	if f.closed.Load() {
		return nil, ErrClosed
	}
	addr := f.addrs[dst]
	if addr == "" {
		return nil, fmt.Errorf("%w: no address for locality %d", ErrPeerUnreachable, dst)
	}
	c, err := net.DialTimeout("tcp", addr, peerDialWait)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %d->%d (%s): %v", ErrPeerUnreachable, f.self, dst, addr, err)
	}
	var hello [helloSize]byte
	hello[0] = helloMagic
	hello[1] = helloVersion
	binary.LittleEndian.PutUint32(hello[2:6], uint32(f.self))
	binary.LittleEndian.PutUint32(hello[6:10], uint32(f.n))
	if _, err := c.Write(hello[:]); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("%w: handshake %d->%d: %v", ErrPeerUnreachable, f.self, dst, err)
	}
	f.conns[dst] = c
	return c, nil
}

// Close implements Fabric: the listener, every dialed connection and
// every accepted connection are closed, and all reader goroutines are
// awaited — a remote dialer that never hangs up cannot hang Close.
func (f *PeerFabric) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	_ = f.ln.Close()
	f.mu.Lock()
	for _, c := range f.conns {
		_ = c.Close()
	}
	for c := range f.accepted {
		_ = c.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}
