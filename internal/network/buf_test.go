package network

import "testing"

func TestGetPayloadLength(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 1 << 20, 1<<20 + 1} {
		b := GetPayload(n)
		if len(b) != n {
			t.Errorf("GetPayload(%d): len %d", n, len(b))
		}
		PutPayload(b)
	}
}

func TestPayloadRoundTripReusesBuffer(t *testing.T) {
	// Drain the class so the test observes its own buffer.
	for {
		select {
		case <-payloadClasses[payloadClass(1000)]:
			continue
		default:
		}
		break
	}
	b := GetPayload(1000)
	if cap(b) != 1024 {
		t.Fatalf("cap = %d, want size-class 1024", cap(b))
	}
	b[0] = 0xEE
	PutPayload(b)
	b2 := GetPayload(600) // same 1024-byte size class
	if cap(b2) != 1024 || b2[0] != 0xEE {
		t.Errorf("pooled buffer not reused: cap=%d first=%x", cap(b2), b2[0])
	}
	PutPayload(b2)
}

func TestPutPayloadIgnoresForeignBuffers(t *testing.T) {
	// Non-power-of-two capacities, tiny buffers, and oversized buffers
	// must all be rejected without panicking.
	PutPayload(nil)
	PutPayload(make([]byte, 0, 100))
	PutPayload(make([]byte, 10, 768))
	PutPayload(make([]byte, 0, 1<<22))
}

func TestPayloadClassBounds(t *testing.T) {
	if c := payloadClass(1); c != 0 {
		t.Errorf("class(1) = %d", c)
	}
	if c := payloadClass(1 << maxPayloadShift); c != maxPayloadShift-minPayloadShift {
		t.Errorf("class(max) = %d", c)
	}
	if c := payloadClass(1<<maxPayloadShift + 1); c != -1 {
		t.Errorf("class(max+1) = %d, want -1", c)
	}
}

func BenchmarkPayloadGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetPayload(1500)
		PutPayload(buf)
	}
}
