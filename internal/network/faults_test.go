package network

import (
	"testing"
	"time"
)

// TestFaultPlanScheduledPartition drives the elapsed-time axis with an
// explicit StartClock anchored in the past, so event application is
// fully deterministic: events due "30 minutes in" have already elapsed,
// events due "2 hours in" have not.
func TestFaultPlanScheduledPartition(t *testing.T) {
	p := NewFaultPlan(1)
	p.PartitionPairAt(0, 1, 30*time.Minute)
	p.HealPairAt(0, 1, 2*time.Hour)
	p.StartClock(time.Now().Add(-time.Hour)) // 1h elapsed: cut due, heal not

	if got := p.decide(0, 1, nil); got.Action != FaultDrop {
		t.Fatalf("0->1 after due partition: %v, want FaultDrop", got.Action)
	}
	if got := p.decide(1, 0, nil); got.Action != FaultDrop {
		t.Fatalf("1->0 after due partition: %v, want FaultDrop (symmetric)", got.Action)
	}
	if got := p.decide(0, 2, nil); got.Action != FaultDeliver {
		t.Fatalf("0->2 uninvolved link: %v, want FaultDeliver", got.Action)
	}

	// Rewind the anchor past the heal: both directions deliver again.
	p.StartClock(time.Now().Add(-3 * time.Hour))
	if got := p.decide(0, 1, nil); got.Action != FaultDeliver {
		t.Fatalf("0->1 after heal: %v, want FaultDeliver", got.Action)
	}
	if got := p.decide(1, 0, nil); got.Action != FaultDeliver {
		t.Fatalf("1->0 after heal: %v, want FaultDeliver", got.Action)
	}
}

// TestFaultPlanEventOrdering: events scheduled out of order apply in due
// order — a heal scheduled before a later re-partition must not undo it.
func TestFaultPlanEventOrdering(t *testing.T) {
	p := NewFaultPlan(1)
	// Scheduled out of order on purpose.
	p.ClearLinkAt(0, 1, 20*time.Minute)
	p.SetLinkAt(0, 1, 10*time.Minute, LinkFaults{Partition: true})
	p.SetLinkAt(0, 1, 30*time.Minute, LinkFaults{Partition: true})
	p.StartClock(time.Now().Add(-25 * time.Minute)) // cut+heal due, re-cut not

	if got := p.decide(0, 1, nil); got.Action != FaultDeliver {
		t.Fatalf("after cut+heal: %v, want FaultDeliver", got.Action)
	}
	p.StartClock(time.Now().Add(-45 * time.Minute)) // re-cut now due
	if got := p.decide(0, 1, nil); got.Action != FaultDrop {
		t.Fatalf("after re-cut: %v, want FaultDrop", got.Action)
	}
}

// TestFaultPlanPartitionPairImmediate covers the non-scheduled helpers.
func TestFaultPlanPartitionPairImmediate(t *testing.T) {
	p := NewFaultPlan(1)
	p.PartitionPair(2, 0)
	for _, d := range [][2]int{{2, 0}, {0, 2}} {
		if got := p.decide(d[0], d[1], nil); got.Action != FaultDrop {
			t.Fatalf("%d->%d: %v, want FaultDrop", d[0], d[1], got.Action)
		}
	}
	p.HealPair(2, 0)
	for _, d := range [][2]int{{2, 0}, {0, 2}} {
		if got := p.decide(d[0], d[1], nil); got.Action != FaultDeliver {
			t.Fatalf("%d->%d after HealPair: %v, want FaultDeliver", d[0], d[1], got.Action)
		}
	}
}

// TestFaultPlanFlapPair: a flap schedule alternates cut and heal.
func TestFaultPlanFlapPair(t *testing.T) {
	p := NewFaultPlan(1)
	p.FlapPair(0, 1, 0, 20*time.Minute, 3)
	for i, want := range []struct {
		elapsed time.Duration
		action  FaultAction
	}{
		{5 * time.Minute, FaultDrop},     // cycle 0 cut
		{15 * time.Minute, FaultDeliver}, // cycle 0 healed
		{25 * time.Minute, FaultDrop},    // cycle 1 cut
		{35 * time.Minute, FaultDeliver}, // cycle 1 healed
		{45 * time.Minute, FaultDrop},    // cycle 2 cut
		{55 * time.Minute, FaultDeliver}, // cycle 2 healed
	} {
		p.StartClock(time.Now().Add(-want.elapsed))
		if got := p.decide(0, 1, nil); got.Action != want.action {
			t.Fatalf("step %d (elapsed %v): %v, want %v", i, want.elapsed, got.Action, want.action)
		}
	}
}
