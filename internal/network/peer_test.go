package network

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

func newPeerPair(t *testing.T) (*PeerFabric, *PeerFabric) {
	t.Helper()
	a, err := NewPeerFabric(PeerConfig{Localities: 2, Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPeerFabric(PeerConfig{Localities: 2, Self: 1})
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	if err := a.SetPeerAddr(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeerAddr(0, a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func payloadFor(msg string) []byte {
	p := GetPayload(len(msg))
	copy(p, msg)
	return p
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPeerFabricExchange(t *testing.T) {
	a, b := newPeerPair(t)
	gotA := make(chan string, 4)
	gotB := make(chan string, 4)
	a.SetHandler(0, func(src int, payload []byte) {
		if src != 1 {
			t.Errorf("a: src = %d, want 1", src)
		}
		gotA <- string(payload)
		PutPayload(payload)
	})
	b.SetHandler(1, func(src int, payload []byte) {
		if src != 0 {
			t.Errorf("b: src = %d, want 0", src)
		}
		gotB <- string(payload)
		PutPayload(payload)
	})
	if err := a.Send(0, 1, payloadFor("hello")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, 0, payloadFor("world")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gotB:
		if m != "hello" {
			t.Fatalf("b received %q", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b: no delivery")
	}
	select {
	case m := <-gotA:
		if m != "world" {
			t.Fatalf("a received %q", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("a: no delivery")
	}
	if s := a.Stats(); s.MessagesSent != 1 || s.MessagesReceived != 1 {
		t.Fatalf("a stats = %+v", s)
	}
}

func TestPeerFabricSelfSend(t *testing.T) {
	a, err := NewPeerFabric(PeerConfig{Localities: 3, Self: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got := make(chan string, 1)
	a.SetHandler(1, func(src int, payload []byte) {
		got <- string(payload)
		PutPayload(payload)
	})
	if err := a.Send(1, 1, payloadFor("loop")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "loop" {
			t.Fatalf("received %q", m)
		}
	case <-time.After(time.Second):
		t.Fatal("no self delivery")
	}
}

func TestPeerFabricUnreachable(t *testing.T) {
	a, err := NewPeerFabric(PeerConfig{Localities: 3, Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// No address installed for peer 1.
	if err := a.Send(0, 1, payloadFor("x")); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("no-address send error = %v, want ErrPeerUnreachable", err)
	}
	// An installed but dead address: bind a listener, close it, use its port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()
	if err := a.SetPeerAddr(2, dead); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, 2, payloadFor("y")); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("dead-address send error = %v, want ErrPeerUnreachable", err)
	}
	// Wrong source locality is a caller bug, not unreachability.
	if err := a.Send(1, 0, payloadFor("z")); !errors.Is(err, ErrBadLocality) {
		t.Fatalf("foreign-src send error = %v, want ErrBadLocality", err)
	}
}

func TestPeerFabricBadHandshakeRejected(t *testing.T) {
	a, err := NewPeerFabric(PeerConfig{Localities: 2, Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	delivered := make(chan struct{}, 1)
	a.SetHandler(0, func(src int, payload []byte) {
		delivered <- struct{}{}
		PutPayload(payload)
	})

	// Garbage hello.
	c, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("not a hello, definitely"))
	waitFor(t, 2*time.Second, func() bool { return a.BadHandshakes() >= 1 }, "garbage hello rejection")
	_ = c.Close()

	// Valid hello, then a frame claiming a different source locality.
	c2, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var hello [helloSize]byte
	hello[0] = helloMagic
	hello[1] = helloVersion
	binary.LittleEndian.PutUint32(hello[2:6], 1) // we are peer 1
	binary.LittleEndian.PutUint32(hello[6:10], 2)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0) // ...claiming frames from 0
	binary.LittleEndian.PutUint32(hdr[4:8], 3)
	_, _ = c2.Write(append(append(hello[:], hdr[:]...), 'a', 'b', 'c'))
	waitFor(t, 2*time.Second, func() bool { return a.BadHandshakes() >= 2 }, "spoofed-source rejection")
	select {
	case <-delivered:
		t.Fatal("spoofed frame was delivered")
	default:
	}
}

func TestPeerFabricCloseWithLingeringDialer(t *testing.T) {
	a, err := NewPeerFabric(PeerConfig{Localities: 2, Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	// A remote dialer that handshakes and then goes silent without ever
	// closing: Close must still return (it owns the accepted conn).
	c, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hello [helloSize]byte
	hello[0] = helloMagic
	hello[1] = helloVersion
	binary.LittleEndian.PutUint32(hello[2:6], 1)
	binary.LittleEndian.PutUint32(hello[6:10], 2)
	if _, err := c.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the serve goroutine start
	done := make(chan struct{})
	go func() { _ = a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a lingering accepted connection")
	}
}
