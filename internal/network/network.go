// Package network provides the message transport connecting localities.
//
// The paper's experiments ran on a cluster (two to four ROSTAM nodes over
// Intel MPI). This reproduction has no cluster, so the primary transport
// is an in-process fabric with an explicit cost model: each message pays a
// fixed per-message CPU overhead at the sender and receiver, a per-byte
// CPU cost, serialized transmission time (bandwidth) on its link, and
// wire latency. The CPU costs are actually spent (calibrated busy-wait on
// the calling goroutine), so the runtime's background-work counters and
// wall-clock measurements observe real contention; the wire times are
// slept on dedicated link goroutines, preserving per-link FIFO order.
//
// Per-message overhead is the quantity message coalescing exists to
// amortise ("overheads associated with the creating and sending of
// messages ... rapidly aggregate"): sending k parcels in one message pays
// the fixed costs once instead of k times.
//
// A real TCP loopback transport (see tcp.go) implements the same Fabric
// interface for validation against genuine sockets.
package network

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/timer"
)

// Handler consumes messages delivered to a locality. Handlers run on the
// fabric's delivery goroutines and must be fast — typically they enqueue
// the payload for the locality's scheduler to process as background work.
// The handler assumes ownership of payload and should recycle it with
// PutPayload once fully consumed.
type Handler func(src int, payload []byte)

// Fabric is a transport connecting a fixed set of localities, numbered
// 0..n-1.
type Fabric interface {
	// Send transmits payload from locality src to locality dst. The call
	// blocks for the modeled per-message send CPU cost and then returns;
	// delivery happens asynchronously. Send takes ownership of payload:
	// the caller must not touch it again on success (in-process fabrics
	// deliver the same buffer to the destination handler, which releases
	// it via PutPayload). When Send returns an error the caller retains
	// ownership and may recycle the buffer itself.
	Send(src, dst int, payload []byte) error
	// SetHandler installs the delivery callback for locality dst.
	// It must be called before any Send targeting dst.
	SetHandler(dst int, h Handler)
	// Localities returns the number of endpoints.
	Localities() int
	// Model returns the fabric's cost model (zero for real transports).
	Model() CostModel
	// Stats returns cumulative transmission statistics.
	Stats() Stats
	// Close releases the fabric's resources. Sends after Close fail.
	Close() error
}

// CostModel describes the per-message and per-byte costs of the simulated
// wire. A zero model makes the fabric a plain in-memory queue.
type CostModel struct {
	// SendOverhead is the fixed CPU cost paid by the sending goroutine
	// per message (message setup, protocol handshaking, buffer
	// registration). This is the dominant term coalescing amortises.
	SendOverhead time.Duration
	// RecvOverhead is the fixed CPU cost the receiver pays per message;
	// the parcel port spins it on a scheduler worker while decoding.
	RecvOverhead time.Duration
	// PerByteSendCPU is CPU cost per payload byte at the sender
	// (copies, checksums). Usually small compared to SendOverhead.
	PerByteSendCPU time.Duration
	// Latency is the one-way wire latency; it overlaps between messages.
	Latency time.Duration
	// BandwidthBytesPerUS is link bandwidth in bytes per microsecond
	// (e.g. 1250 ≈ 10 Gb/s). Transmission time serializes per link.
	// Zero means infinite bandwidth.
	BandwidthBytesPerUS float64
	// EagerThresholdBytes models the eager/rendezvous protocol switch of
	// MPI-class transports: messages strictly larger than this pay the
	// rendezvous costs below. Zero disables the rendezvous path.
	// Over-aggressive coalescing pushes messages past this threshold,
	// which is the realistic penalty that makes very large coalesced
	// messages slower — the regime the paper observes for Parquet beyond
	// 4 parcels per message.
	EagerThresholdBytes int
	// RendezvousRTT is the extra one-time delivery delay of a rendezvous
	// message (request-to-send/clear-to-send handshake round trip).
	RendezvousRTT time.Duration
	// RendezvousCPU is extra fixed CPU paid at both the sender and the
	// receiver per rendezvous message (pinning, registration).
	RendezvousCPU time.Duration
	// RendezvousPerByteCPU is extra CPU paid at both sides of a
	// rendezvous message for every payload byte in excess of the eager
	// threshold: bytes beyond the eager window traverse the
	// registered-memory path (pinning, registration-cache pressure),
	// which costs more the further a message overshoots the threshold.
	// This is the term that makes over-aggressive coalescing slower in
	// total, not just per message.
	RendezvousPerByteCPU time.Duration
}

// Rendezvous reports whether a payload of n bytes exceeds the eager
// threshold and therefore pays the rendezvous costs.
func (m CostModel) Rendezvous(n int) bool {
	return m.EagerThresholdBytes > 0 && n > m.EagerThresholdBytes
}

// SendCPU returns the total sender-side CPU cost for a payload of n bytes.
func (m CostModel) SendCPU(n int) time.Duration {
	d := m.SendOverhead + time.Duration(n)*m.PerByteSendCPU
	if m.Rendezvous(n) {
		d += m.RendezvousCPU + time.Duration(n-m.EagerThresholdBytes)*m.RendezvousPerByteCPU
	}
	return d
}

// RecvCPU returns the receiver-side fixed CPU cost for a payload of n
// bytes, including the rendezvous surcharge when it applies.
func (m CostModel) RecvCPU(n int) time.Duration {
	d := m.RecvOverhead
	if m.Rendezvous(n) {
		d += m.RendezvousCPU + time.Duration(n-m.EagerThresholdBytes)*m.RendezvousPerByteCPU
	}
	return d
}

// TxTime returns the serialized wire transmission time for n bytes.
func (m CostModel) TxTime(n int) time.Duration {
	if m.BandwidthBytesPerUS <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.BandwidthBytesPerUS * float64(time.Microsecond))
}

// DefaultCostModel returns the model used by the experiment harness. The
// values are calibrated so that per-message overhead dominates for the
// paper's small-parcel workloads (a single complex double is ~25 bytes of
// payload) while bandwidth still matters for multi-kilobyte coalesced
// messages, mirroring the commodity-cluster regime of the testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		SendOverhead:        25 * time.Microsecond,
		RecvOverhead:        20 * time.Microsecond,
		PerByteSendCPU:      2 * time.Nanosecond,
		Latency:             30 * time.Microsecond,
		BandwidthBytesPerUS: 1250, // ≈ 10 Gb/s
		EagerThresholdBytes: 32 << 10,
		RendezvousRTT:       60 * time.Microsecond,
		RendezvousCPU:       15 * time.Microsecond,
	}
}

// Stats reports cumulative fabric activity. Receive-side counts are
// incremented when a message is handed to the destination handler (for
// TCPFabric, after its frame has been fully read off the socket), so
// sent and received totals converge only once deliveries drain.
type Stats struct {
	MessagesSent     uint64
	BytesSent        uint64
	MessagesReceived uint64
	BytesReceived    uint64
	Dropped          uint64
	Duplicated       uint64
	Delayed          uint64
	Reordered        uint64
}

// FaultAction tells the fabric what to do with a message under fault
// injection.
type FaultAction int

const (
	// FaultDeliver delivers the message normally.
	FaultDeliver FaultAction = iota
	// FaultDrop silently discards the message.
	FaultDrop
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultDelay delivers the message after the extra delay carried in
	// Fault.Delay, on top of the modeled wire latency.
	FaultDelay
	// FaultReorder holds the message back and releases it behind the next
	// message transmitted on the same link, swapping their wire order. If
	// no later message ever follows, the held message is released when
	// the link closes (recycled, not delivered) — a retransmission layer
	// above the fabric turns that into plain loss.
	FaultReorder
)

// Fault is a fault-injection decision for one message.
type Fault struct {
	// Action selects what happens to the message.
	Action FaultAction
	// Delay is the extra delivery delay applied by FaultDelay.
	Delay time.Duration
}

// FaultHook inspects every message before transmission and decides its
// fate; tests and the chaos harness use it to inject drops, duplicates,
// delays and reordering deterministically. See FaultPlan for a composable
// configuration-driven implementation.
type FaultHook func(src, dst int, payload []byte) Fault

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("network: fabric closed")

// ErrBadLocality reports an out-of-range locality id.
var ErrBadLocality = errors.New("network: locality out of range")

// ErrLinkDown reports that a reliability layer above the fabric has
// exhausted its retry budget for the destination link and stopped
// retransmitting. It lives here (rather than in internal/reliable) so the
// parcel port can classify send failures without importing the
// reliability layer.
var ErrLinkDown = errors.New("network: link down")

// ErrLocalityDown reports that the destination locality has been declared
// dead by the failure detector: AGAS resolutions, parcel sends and pending
// continuations targeting it fail fast with this error instead of timing
// out. Like ErrLinkDown it lives here so every layer (agas, parcel,
// runtime, lco users) can classify the failure without importing the
// health package.
var ErrLocalityDown = errors.New("network: locality down")

// ErrPeerUnreachable reports that a transport could not reach the
// destination's address: no address is known for the peer yet (it has not
// joined), or dialing the known address failed. It is a transient
// condition — callers above a reliability layer see the send retried once
// the peer's address is installed or its listener comes up — distinct
// from ErrLinkDown (retry budget exhausted) and ErrLocalityDown (declared
// crashed).
var ErrPeerUnreachable = errors.New("network: peer unreachable")

// SimFabric is the in-process simulated fabric.
type SimFabric struct {
	model    CostModel
	handlers []atomic.Pointer[Handler]
	links    map[linkKey]*link
	mu       sync.Mutex
	closed   atomic.Bool
	fault    atomic.Pointer[FaultHook]

	msgs    atomic.Uint64
	bytes   atomic.Uint64
	msgsIn  atomic.Uint64
	bytesIn atomic.Uint64
	drops   atomic.Uint64
	dupes   atomic.Uint64
	delays  atomic.Uint64
	reorder atomic.Uint64
	active  sync.WaitGroup
}

type linkKey struct{ src, dst int }

// link pipelines messages through two stages: a transmit pacer that
// serializes bandwidth, and a delivery stage that adds (overlapping)
// latency while preserving FIFO order. The transmit queue is unbounded so
// Send never blocks on a saturated wire — the modeled costs, not Go
// channel backpressure, pace the system, and bidirectional overload
// cannot deadlock the parcel ports' background-work loops. The queue is a
// ring buffer so sustained traffic neither pins popped payloads nor
// reallocates once the queue reaches its high-water mark.
type link struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      ring.Buffer[linkMsg]
	held   *linkMsg // message parked by FaultReorder awaiting a successor
	closed bool
	dq     chan deliverMsg
}

func newLink() *link {
	lk := &link{dq: make(chan deliverMsg, linkQueueDepth)}
	lk.cond = sync.NewCond(&lk.mu)
	return lk
}

// push enqueues a message; pushes after close recycle the payload instead
// of delivering (the buffer must not leak out of the pool). With hold set
// the message is parked and released behind the next pushed message
// (FaultReorder); at most one message is held per link — a second hold
// while one is parked enqueues normally.
func (lk *link) push(m linkMsg, hold bool) {
	lk.mu.Lock()
	if lk.closed {
		lk.mu.Unlock()
		PutPayload(m.payload)
		return
	}
	if hold && lk.held == nil {
		lk.held = &m
		lk.mu.Unlock()
		return
	}
	lk.q.Push(m)
	lk.cond.Signal()
	if !hold && lk.held != nil {
		h := *lk.held
		lk.held = nil
		lk.q.Push(h)
		lk.cond.Signal()
	}
	lk.mu.Unlock()
}

// pop dequeues the next message, blocking until one is available or the
// link closes; ok is false when the link is closed and drained.
func (lk *link) pop() (linkMsg, bool) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	for lk.q.Len() == 0 && !lk.closed {
		lk.cond.Wait()
	}
	return lk.q.Pop()
}

func (lk *link) close() {
	lk.mu.Lock()
	lk.closed = true
	if lk.held != nil {
		PutPayload(lk.held.payload)
		lk.held = nil
	}
	lk.cond.Broadcast()
	lk.mu.Unlock()
}

type linkMsg struct {
	src, dst int
	payload  []byte
	// extra is additional delivery delay injected by FaultDelay.
	extra time.Duration
}

type deliverMsg struct {
	src, dst  int
	payload   []byte
	deliverAt time.Time
}

// linkQueueDepth bounds the delivery-stage pipeline per link; the
// transmit queue ahead of it is unbounded.
const linkQueueDepth = 8192

// NewSimFabric creates a simulated fabric connecting n localities with
// the given cost model.
func NewSimFabric(n int, model CostModel) *SimFabric {
	f := &SimFabric{
		model:    model,
		handlers: make([]atomic.Pointer[Handler], n),
		links:    make(map[linkKey]*link),
	}
	return f
}

// Localities implements Fabric.
func (f *SimFabric) Localities() int { return len(f.handlers) }

// Model implements Fabric.
func (f *SimFabric) Model() CostModel { return f.model }

// SetHandler implements Fabric.
func (f *SimFabric) SetHandler(dst int, h Handler) {
	if dst < 0 || dst >= len(f.handlers) {
		panic(fmt.Sprintf("network: SetHandler(%d) out of range", dst))
	}
	f.handlers[dst].Store(&h)
}

// SetFaultHook installs (or, with nil, removes) a fault-injection hook.
func (f *SimFabric) SetFaultHook(h FaultHook) {
	if h == nil {
		f.fault.Store(nil)
		return
	}
	f.fault.Store(&h)
}

// Stats implements Fabric.
func (f *SimFabric) Stats() Stats {
	return Stats{
		MessagesSent:     f.msgs.Load(),
		BytesSent:        f.bytes.Load(),
		MessagesReceived: f.msgsIn.Load(),
		BytesReceived:    f.bytesIn.Load(),
		Dropped:          f.drops.Load(),
		Duplicated:       f.dupes.Load(),
		Delayed:          f.delays.Load(),
		Reordered:        f.reorder.Load(),
	}
}

// Send implements Fabric. The caller's goroutine pays the modeled send
// CPU cost before the message enters the wire pipeline.
func (f *SimFabric) Send(src, dst int, payload []byte) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if src < 0 || src >= len(f.handlers) || dst < 0 || dst >= len(f.handlers) {
		return fmt.Errorf("%w: src=%d dst=%d n=%d", ErrBadLocality, src, dst, len(f.handlers))
	}
	if f.handlers[dst].Load() == nil {
		return fmt.Errorf("network: no handler installed for locality %d", dst)
	}

	// Fault injection happens before any cost is paid so dropped
	// messages are free, matching a send-side drop.
	var fault Fault
	if hook := f.fault.Load(); hook != nil {
		fault = (*hook)(src, dst, payload)
		switch fault.Action {
		case FaultDrop:
			f.drops.Add(1)
			PutPayload(payload)
			return nil
		case FaultDuplicate:
			f.dupes.Add(1)
		case FaultDelay:
			f.delays.Add(1)
		case FaultReorder:
			f.reorder.Add(1)
		}
	}

	// Pay the per-message sender CPU cost on the calling goroutine.
	timer.Spin(f.model.SendCPU(len(payload)))

	f.msgs.Add(1)
	f.bytes.Add(uint64(len(payload)))

	lk := f.getLink(src, dst)
	m := linkMsg{src: src, dst: dst, payload: payload}
	if fault.Action == FaultDelay {
		m.extra = fault.Delay
	}
	lk.push(m, fault.Action == FaultReorder)
	if fault.Action == FaultDuplicate {
		// Each delivery hands buffer ownership to the handler, so the
		// duplicate needs its own copy.
		dup := GetPayload(len(payload))
		copy(dup, payload)
		lk.push(linkMsg{src: src, dst: dst, payload: dup}, false)
	}
	return nil
}

func (f *SimFabric) getLink(src, dst int) *link {
	key := linkKey{src, dst}
	f.mu.Lock()
	defer f.mu.Unlock()
	if lk, ok := f.links[key]; ok {
		return lk
	}
	if f.closed.Load() {
		// The fabric is closing; return an inert, already-closed link so
		// pushes become no-ops.
		lk := newLink()
		lk.close()
		return lk
	}
	lk := newLink()
	f.links[key] = lk
	f.active.Add(2)
	go f.runTx(lk)
	go f.runDelivery(lk)
	return lk
}

// runTx serializes transmission time per link (bandwidth sharing).
func (f *SimFabric) runTx(lk *link) {
	defer f.active.Done()
	for {
		m, ok := lk.pop()
		if !ok {
			break
		}
		if tx := f.model.TxTime(len(m.payload)); tx > 0 && !f.closed.Load() {
			time.Sleep(tx)
		}
		delay := f.model.Latency + m.extra
		if f.model.Rendezvous(len(m.payload)) {
			delay += f.model.RendezvousRTT
		}
		lk.dq <- deliverMsg{
			src: m.src, dst: m.dst, payload: m.payload,
			deliverAt: time.Now().Add(delay),
		}
	}
	close(lk.dq)
}

// runDelivery sleeps until each message's delivery time and invokes the
// destination handler. Delivery times are monotone per link, so FIFO
// order is preserved while latency overlaps between messages.
func (f *SimFabric) runDelivery(lk *link) {
	defer f.active.Done()
	for m := range lk.dq {
		if wait := time.Until(m.deliverAt); wait > 0 && !f.closed.Load() {
			time.Sleep(wait)
		}
		if f.closed.Load() {
			// Undelivered in-flight payloads go back to the pool instead
			// of leaking out of it.
			PutPayload(m.payload)
			continue
		}
		hp := f.handlers[m.dst].Load()
		if hp == nil {
			// No handler installed (torn down mid-flight): recycle instead
			// of leaking the buffer out of the pool.
			PutPayload(m.payload)
			continue
		}
		f.msgsIn.Add(1)
		f.bytesIn.Add(uint64(len(m.payload)))
		(*hp)(m.src, m.payload)
	}
}

// Close implements Fabric. In-flight messages may or may not be delivered.
func (f *SimFabric) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	f.mu.Lock()
	for _, lk := range f.links {
		lk.close()
	}
	f.mu.Unlock()
	f.active.Wait()
	return nil
}
