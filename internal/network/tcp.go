package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPFabric implements Fabric over real loopback TCP sockets, validating
// that the parcel subsystem works over a genuine byte-stream transport
// (HPX's TCP parcelport analog). Messages are framed as a fixed header —
// uint32 source locality, uint32 payload length — followed by the payload.
//
// TCPFabric applies no cost model; per-message overhead is whatever the
// kernel socket path genuinely costs.
type TCPFabric struct {
	n         int
	listeners []net.Listener
	handlers  []atomic.Pointer[Handler]

	mu       sync.Mutex
	conns    map[linkKey]net.Conn
	accepted map[net.Conn]struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	fault    atomic.Pointer[FaultHook]

	msgs    atomic.Uint64
	bytes   atomic.Uint64
	msgsIn  atomic.Uint64
	bytesIn atomic.Uint64
	drops   atomic.Uint64
	dupes   atomic.Uint64
	delays  atomic.Uint64
}

// NewTCPFabric creates a TCP fabric connecting n localities, each
// listening on an ephemeral 127.0.0.1 port. Connections between pairs are
// established lazily on first send.
func NewTCPFabric(n int) (*TCPFabric, error) {
	f := &TCPFabric{
		n:         n,
		listeners: make([]net.Listener, n),
		handlers:  make([]atomic.Pointer[Handler], n),
		conns:     make(map[linkKey]net.Conn),
		accepted:  make(map[net.Conn]struct{}),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("network: listen for locality %d: %w", i, err)
		}
		f.listeners[i] = l
		f.wg.Add(1)
		go f.accept(i, l)
	}
	return f, nil
}

func (f *TCPFabric) accept(dst int, l net.Listener) {
	defer f.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		// Accepted connections are tracked so Close can tear them down:
		// the remote end of an accepted conn belongs to the dialer, and a
		// dialer that never closes (or lives in another process) would
		// otherwise leave the readLoop parked in ReadFull forever and hang
		// Close's wg.Wait.
		f.mu.Lock()
		if f.closed.Load() {
			f.mu.Unlock()
			_ = conn.Close()
			return
		}
		f.accepted[conn] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go f.readLoop(dst, conn)
	}
}

// tcpReadBufferSize sizes the per-connection read buffer. Coalesced
// messages are tens of kilobytes at most, so a 256 KiB buffer lets one
// read syscall drain many queued frames under load — the receive-side
// mirror of Send's vectored (writev) framing.
const tcpReadBufferSize = 256 << 10

func (f *TCPFabric) readLoop(dst int, conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		_ = conn.Close()
		f.mu.Lock()
		delete(f.accepted, conn)
		f.mu.Unlock()
	}()
	// Batched socket reads: the buffered reader turns per-frame ReadFull
	// pairs into large socket reads, so a burst of small frames costs one
	// syscall instead of two per frame. Framing is unchanged — only where
	// the bytes wait differs.
	br := bufio.NewReaderSize(conn, tcpReadBufferSize)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		src := binary.LittleEndian.Uint32(hdr[0:4])
		n := binary.LittleEndian.Uint32(hdr[4:8])
		// Pooled receive buffer: the handler owns it and recycles it via
		// PutPayload after decoding.
		payload := GetPayload(int(n))
		if _, err := io.ReadFull(br, payload); err != nil {
			PutPayload(payload)
			return
		}
		if f.closed.Load() {
			PutPayload(payload)
			return
		}
		if hp := f.handlers[dst].Load(); hp != nil {
			f.msgsIn.Add(1)
			f.bytesIn.Add(uint64(len(payload)))
			(*hp)(int(src), payload)
		} else {
			PutPayload(payload)
		}
	}
}

// Localities implements Fabric.
func (f *TCPFabric) Localities() int { return f.n }

// Model implements Fabric; real sockets have no synthetic model.
func (f *TCPFabric) Model() CostModel { return CostModel{} }

// SetHandler implements Fabric.
func (f *TCPFabric) SetHandler(dst int, h Handler) {
	if dst < 0 || dst >= f.n {
		panic(fmt.Sprintf("network: SetHandler(%d) out of range", dst))
	}
	f.handlers[dst].Store(&h)
}

// Stats implements Fabric.
func (f *TCPFabric) Stats() Stats {
	return Stats{
		MessagesSent:     f.msgs.Load(),
		BytesSent:        f.bytes.Load(),
		MessagesReceived: f.msgsIn.Load(),
		BytesReceived:    f.bytesIn.Load(),
		Dropped:          f.drops.Load(),
		Duplicated:       f.dupes.Load(),
		Delayed:          f.delays.Load(),
	}
}

// SetFaultHook installs (or, with nil, removes) a fault-injection hook,
// mirroring SimFabric.SetFaultHook. Drops skip the socket write entirely;
// duplicates write the frame twice; FaultDelay (and FaultReorder, which a
// byte-stream transport can only express as a delay — later frames
// overtake the delayed one) writes the frame from a timer goroutine after
// the extra latency.
func (f *TCPFabric) SetFaultHook(h FaultHook) {
	if h == nil {
		f.fault.Store(nil)
		return
	}
	f.fault.Store(&h)
}

// Send implements Fabric. Writes on a given (src,dst) pair are serialized
// by the fabric mutex, so framing is never interleaved. A dial or write
// error evicts the cached connection (closing it) so the next Send
// redials instead of failing forever on a dead socket; the message itself
// is reported lost to the caller, which retains payload ownership —
// redelivery is the reliability layer's job.
func (f *TCPFabric) Send(src, dst int, payload []byte) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return fmt.Errorf("%w: src=%d dst=%d n=%d", ErrBadLocality, src, dst, f.n)
	}

	duplicate := false
	if hook := f.fault.Load(); hook != nil {
		fault := (*hook)(src, dst, payload)
		switch fault.Action {
		case FaultDrop:
			f.drops.Add(1)
			PutPayload(payload)
			return nil
		case FaultDuplicate:
			f.dupes.Add(1)
			duplicate = true
		case FaultDelay, FaultReorder:
			f.delays.Add(1)
			delay := fault.Delay
			if delay <= 0 {
				delay = DefaultFaultDelay
			}
			// The timer goroutine is not tracked by f.wg: firing after
			// Close just recycles the payload, so Close need not wait.
			time.AfterFunc(delay, func() {
				if f.closed.Load() {
					PutPayload(payload)
					return
				}
				// Best effort: a late write on a dead connection is just
				// another injected loss.
				if err := f.writeFrame(src, dst, payload); err == nil {
					f.msgs.Add(1)
					f.bytes.Add(uint64(len(payload)))
				}
				PutPayload(payload)
			})
			return nil
		}
	}

	if err := f.writeFrame(src, dst, payload); err != nil {
		return err
	}
	if duplicate {
		_ = f.writeFrame(src, dst, payload)
	}
	// The socket write copied the bytes; this transport is done with the
	// caller's buffer, so recycle it on its behalf (Send owns it).
	PutPayload(payload)
	f.msgs.Add(1)
	f.bytes.Add(uint64(len(payload)))
	return nil
}

// writeFrame frames and writes one message on the cached (dialing if
// needed) connection for the link. On a write error the connection is
// closed and evicted from the cache so the next attempt redials.
func (f *TCPFabric) writeFrame(src, dst int, payload []byte) error {
	conn, err := f.getConn(src, dst)
	if err != nil {
		return err
	}
	// Header and payload go out as one writev (net.Buffers) on the TCP
	// connection: a single syscall per message with no copy of the
	// payload into a combined frame buffer. The vectored write also
	// keeps the framing atomic under the fabric mutex.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(src))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}

	f.mu.Lock()
	_, err = bufs.WriteTo(conn)
	if err != nil {
		// Evict the broken connection (only if it is still the cached
		// one — a concurrent sender may have already redialed).
		key := linkKey{src, dst}
		if f.conns[key] == conn {
			delete(f.conns, key)
		}
		_ = conn.Close()
	}
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("network: tcp send %d->%d: %w", src, dst, err)
	}
	return nil
}

func (f *TCPFabric) getConn(src, dst int) (net.Conn, error) {
	key := linkKey{src, dst}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.conns[key]; ok {
		return c, nil
	}
	if f.closed.Load() {
		return nil, ErrClosed
	}
	c, err := net.Dial("tcp", f.listeners[dst].Addr().String())
	if err != nil {
		// Typed so layers above can classify a dead or not-yet-listening
		// peer (transient, retryable) without string matching. No stale
		// slot is left behind: the cache is only populated on success.
		return nil, fmt.Errorf("%w: dial %d->%d: %v", ErrPeerUnreachable, src, dst, err)
	}
	f.conns[key] = c
	return c, nil
}

// Close implements Fabric, closing all listeners and connections and
// waiting for reader goroutines to exit.
func (f *TCPFabric) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	f.mu.Lock()
	for _, c := range f.conns {
		_ = c.Close()
	}
	for c := range f.accepted {
		_ = c.Close()
	}
	f.mu.Unlock()
	for _, l := range f.listeners {
		if l != nil {
			_ = l.Close()
		}
	}
	f.wg.Wait()
	return nil
}
