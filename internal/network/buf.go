package network

import "math/bits"

// Payload buffer pool.
//
// Wire payloads are the highest-rate allocation of the transmission
// pipeline: every message encoded by a parcel port and every frame read
// off a TCP socket needs a byte buffer that lives exactly from encode (or
// socket read) until the receiving port has decoded it. The pool recycles
// those buffers across messages so the steady-state hot path performs no
// heap allocation.
//
// Buffers are size-classed by power of two between minPayloadShift and
// maxPayloadShift. Each class is backed by a fixed-capacity channel used
// as a free list: channel operations do not allocate (unlike sync.Pool,
// whose Put boxes the slice header on every call), which is what keeps
// GetPayload/PutPayload off the allocation profile entirely. When a class
// is empty, GetPayload falls back to make; when full, PutPayload lets the
// buffer go to the garbage collector. Total pooled memory is bounded by
// classBudgetBytes per class.
//
// Ownership protocol: Fabric.Send takes ownership of the payload; an
// in-process fabric hands the same buffer to the destination handler,
// which assumes ownership in turn. The parcel port releases payloads with
// PutPayload after decoding (its "explicit release point"). Releasing is
// optional — an unreleased buffer is simply collected — but a released
// buffer must never be used again.

const (
	minPayloadShift = 8  // 256 B
	maxPayloadShift = 20 // 1 MiB

	// classBudgetBytes bounds the memory parked in each size class.
	classBudgetBytes = 4 << 20
)

var payloadClasses [maxPayloadShift - minPayloadShift + 1]chan []byte

func init() {
	for i := range payloadClasses {
		size := 1 << (minPayloadShift + i)
		slots := classBudgetBytes / size
		if slots > 4096 {
			slots = 4096
		}
		if slots < 4 {
			slots = 4
		}
		payloadClasses[i] = make(chan []byte, slots)
	}
}

// payloadClass returns the class index for a request of n bytes, or -1
// when n exceeds the largest class.
func payloadClass(n int) int {
	if n <= 1<<minPayloadShift {
		return 0
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2(n))
	if shift > maxPayloadShift {
		return -1
	}
	return shift - minPayloadShift
}

// GetPayload returns a buffer of length n, recycled when a suitably sized
// one is pooled. Contents are unspecified; callers overwrite or reslice
// to zero length before appending.
func GetPayload(n int) []byte {
	c := payloadClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	select {
	case b := <-payloadClasses[c]:
		return b[:n]
	default:
		return make([]byte, n, 1<<(minPayloadShift+c))
	}
}

// PutPayload recycles b. Only buffers whose capacity exactly matches a
// size class are pooled (anything else — including buffers that were
// never pooled — is left to the garbage collector), so PutPayload is safe
// to call on any slice. The caller must not use b afterwards.
func PutPayload(b []byte) {
	c := cap(b)
	if c < 1<<minPayloadShift || c&(c-1) != 0 {
		return
	}
	idx := bits.TrailingZeros(uint(c)) - minPayloadShift
	if idx < 0 || idx >= len(payloadClasses) {
		return
	}
	select {
	case payloadClasses[idx] <- b[:c]:
	default:
	}
}
