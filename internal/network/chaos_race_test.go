package network_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/network"
)

// faultFabric is a Fabric that supports runtime fault-hook swaps; both
// concrete fabrics satisfy it.
type faultFabric interface {
	network.Fabric
	SetFaultHook(network.FaultHook)
}

// hammerFabric exercises SetFaultHook, Send and Close concurrently so the
// race detector can observe unsynchronized access to the hook pointer,
// connection cache or stats counters.
func hammerFabric(t *testing.T, f faultFabric) {
	t.Helper()
	n := f.Localities()
	for i := 0; i < n; i++ {
		f.SetHandler(i, func(src int, payload []byte) {
			network.PutPayload(payload)
		})
	}
	plan := network.NewFaultPlan(3)
	plan.SetDefault(network.LinkFaults{
		DropRate:      0.2,
		DuplicateRate: 0.1,
		DelayRate:     0.1,
		Delay:         50 * time.Microsecond,
	})
	hooks := []network.FaultHook{plan.Hook(), nil,
		func(src, dst int, payload []byte) network.Fault {
			return network.Fault{Action: network.FaultDrop}
		}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.SetFaultHook(hooks[i%len(hooks)])
		}
	}()
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				b := network.GetPayload(16)
				if err := f.Send(s%n, (s+1)%n, b); err != nil {
					// Closed mid-run: caller retains ownership on error.
					network.PutPayload(b)
					return
				}
			}
		}(s)
	}
	time.Sleep(2 * time.Millisecond)
	if err := f.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
	_ = f.Stats()
}

func TestChaosFaultHookRaceSim(t *testing.T) {
	hammerFabric(t, network.NewSimFabric(2, network.CostModel{Latency: time.Microsecond}))
}

func TestChaosFaultHookRaceTCP(t *testing.T) {
	f, err := network.NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	hammerFabric(t, f)
}
