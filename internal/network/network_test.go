package network

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector is a test handler capturing delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []struct {
		src     int
		payload []byte
	}
	ch chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1<<16)}
}

func (c *collector) handler(src int, payload []byte) {
	c.mu.Lock()
	c.msgs = append(c.msgs, struct {
		src     int
		payload []byte
	}{src, payload})
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for message %d/%d", i+1, n)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func TestSimFabricDelivery(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	defer f.Close()
	c := newCollector()
	f.SetHandler(1, c.handler)
	if err := f.Send(0, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1, time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.msgs[0].src != 0 || string(c.msgs[0].payload) != "hello" {
		t.Errorf("got %+v", c.msgs[0])
	}
}

func TestSimFabricFIFOPerLink(t *testing.T) {
	f := NewSimFabric(2, CostModel{Latency: 200 * time.Microsecond})
	defer f.Close()
	c := newCollector()
	f.SetHandler(1, c.handler)
	const n = 200
	for i := 0; i < n; i++ {
		if err := f.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.wait(t, n, 5*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		if c.msgs[i].payload[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, c.msgs[i].payload[0])
		}
	}
}

func TestSimFabricLatency(t *testing.T) {
	lat := 2 * time.Millisecond
	f := NewSimFabric(2, CostModel{Latency: lat})
	defer f.Close()
	got := make(chan time.Time, 1)
	f.SetHandler(1, func(src int, p []byte) { got <- time.Now() })
	start := time.Now()
	if err := f.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	at := <-got
	if elapsed := at.Sub(start); elapsed < lat {
		t.Errorf("delivered after %v, want >= %v", elapsed, lat)
	}
}

func TestSimFabricSendCPUCost(t *testing.T) {
	oh := 500 * time.Microsecond
	f := NewSimFabric(2, CostModel{SendOverhead: oh})
	defer f.Close()
	f.SetHandler(1, func(int, []byte) {})
	start := time.Now()
	if err := f.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < oh {
		t.Errorf("Send returned after %v, want >= %v (send CPU must be paid by caller)", elapsed, oh)
	}
}

func TestSimFabricBandwidthSerializes(t *testing.T) {
	// 1 byte/µs and two 1000-byte messages: second delivery must trail
	// the first by ~1 ms of transmission time.
	f := NewSimFabric(2, CostModel{BandwidthBytesPerUS: 1})
	defer f.Close()
	times := make(chan time.Time, 2)
	f.SetHandler(1, func(int, []byte) { times <- time.Now() })
	payload := make([]byte, 1000)
	for i := 0; i < 2; i++ {
		if err := f.Send(0, 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	first := <-times
	second := <-times
	if gap := second.Sub(first); gap < 500*time.Microsecond {
		t.Errorf("deliveries %v apart, want >= 500µs (bandwidth must serialize)", gap)
	}
}

func TestSimFabricStats(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	defer f.Close()
	f.SetHandler(1, func(int, []byte) {})
	for i := 0; i < 3; i++ {
		if err := f.Send(0, 1, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.MessagesSent != 3 || s.BytesSent != 30 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSimFabricErrors(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	defer f.Close()
	f.SetHandler(1, func(int, []byte) {})
	if err := f.Send(0, 5, nil); !errors.Is(err, ErrBadLocality) {
		t.Errorf("out of range dst: %v", err)
	}
	if err := f.Send(-1, 1, nil); !errors.Is(err, ErrBadLocality) {
		t.Errorf("out of range src: %v", err)
	}
	if err := f.Send(1, 0, nil); err == nil {
		t.Error("send to locality without handler should fail")
	}
}

func TestSimFabricClose(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	f.SetHandler(1, func(int, []byte) {})
	if err := f.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestSimFabricFaultDrop(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	defer f.Close()
	c := newCollector()
	f.SetHandler(1, c.handler)
	var n atomic.Int32
	f.SetFaultHook(func(src, dst int, p []byte) Fault {
		if n.Add(1)%2 == 1 {
			return Fault{Action: FaultDrop}
		}
		return Fault{Action: FaultDeliver}
	})
	for i := 0; i < 10; i++ {
		if err := f.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.wait(t, 5, time.Second)
	time.Sleep(20 * time.Millisecond)
	if got := c.count(); got != 5 {
		t.Errorf("delivered %d, want 5", got)
	}
	if f.Stats().Dropped != 5 {
		t.Errorf("dropped = %d", f.Stats().Dropped)
	}
	f.SetFaultHook(nil) // removal must not panic
}

func TestSimFabricFaultDuplicate(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	defer f.Close()
	c := newCollector()
	f.SetHandler(1, c.handler)
	f.SetFaultHook(func(int, int, []byte) Fault { return Fault{Action: FaultDuplicate} })
	if err := f.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 2, time.Second)
	if f.Stats().Duplicated != 1 {
		t.Errorf("duplicated = %d", f.Stats().Duplicated)
	}
}

func TestSimFabricManyToOne(t *testing.T) {
	const senders = 4
	const per = 100
	f := NewSimFabric(senders+1, CostModel{Latency: 50 * time.Microsecond})
	defer f.Close()
	c := newCollector()
	f.SetHandler(senders, c.handler)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.Send(s, senders, []byte{byte(s)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	c.wait(t, senders*per, 10*time.Second)
	if got := c.count(); got != senders*per {
		t.Errorf("delivered %d, want %d", got, senders*per)
	}
}

func TestCostModelArithmetic(t *testing.T) {
	m := CostModel{
		SendOverhead:        10 * time.Microsecond,
		PerByteSendCPU:      time.Nanosecond,
		BandwidthBytesPerUS: 1000,
	}
	if got := m.SendCPU(1000); got != 11*time.Microsecond {
		t.Errorf("SendCPU = %v", got)
	}
	if got := m.TxTime(2000); got != 2*time.Microsecond {
		t.Errorf("TxTime = %v", got)
	}
	if got := (CostModel{}).TxTime(1 << 20); got != 0 {
		t.Errorf("infinite bandwidth TxTime = %v", got)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.SendOverhead <= 0 || m.RecvOverhead <= 0 || m.Latency <= 0 || m.BandwidthBytesPerUS <= 0 {
		t.Errorf("default model has zero fields: %+v", m)
	}
	// Per-message overhead must dominate per-byte cost for tiny parcels —
	// the regime the paper's toy application exercises.
	if m.SendCPU(32) < 2*m.SendCPU(0)/3 {
		t.Error("per-byte cost dominates tiny messages; model miscalibrated")
	}
}

func TestTCPFabricDelivery(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := newCollector()
	f.SetHandler(1, c.handler)
	for i := 0; i < 50; i++ {
		if err := f.Send(0, 1, []byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.wait(t, 50, 5*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < 50; i++ {
		if want := fmt.Sprintf("msg-%03d", i); string(c.msgs[i].payload) != want {
			t.Fatalf("message %d = %q, want %q", i, c.msgs[i].payload, want)
		}
		if c.msgs[i].src != 0 {
			t.Fatalf("src = %d", c.msgs[i].src)
		}
	}
	if f.Stats().MessagesSent != 50 {
		t.Errorf("stats = %+v", f.Stats())
	}
}

func TestTCPFabricBidirectional(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c0, c1 := newCollector(), newCollector()
	f.SetHandler(0, c0.handler)
	f.SetHandler(1, c1.handler)
	if err := f.Send(0, 1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	c1.wait(t, 1, time.Second)
	if err := f.Send(1, 0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	c0.wait(t, 1, time.Second)
}

func TestTCPFabricClose(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	f.SetHandler(1, func(int, []byte) {})
	if err := f.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v", err)
	}
}

func TestTCPFabricLargePayload(t *testing.T) {
	f, err := NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := newCollector()
	f.SetHandler(1, c.handler)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := f.Send(0, 1, big); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1, 5*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.msgs[0].payload) != len(big) {
		t.Fatalf("payload len = %d", len(c.msgs[0].payload))
	}
	for i := 0; i < len(big); i += 4099 {
		if c.msgs[0].payload[i] != big[i] {
			t.Fatalf("payload corrupt at %d", i)
		}
	}
}

func TestRendezvousCostModel(t *testing.T) {
	m := CostModel{
		SendOverhead:         10 * time.Microsecond,
		RecvOverhead:         5 * time.Microsecond,
		EagerThresholdBytes:  1000,
		RendezvousCPU:        20 * time.Microsecond,
		RendezvousPerByteCPU: 10 * time.Nanosecond,
	}
	if m.Rendezvous(1000) {
		t.Error("payload at the threshold should stay eager")
	}
	if !m.Rendezvous(1001) {
		t.Error("payload above the threshold should rendezvous")
	}
	// Eager message: base costs only.
	if got := m.SendCPU(500); got != 10*time.Microsecond {
		t.Errorf("eager SendCPU = %v", got)
	}
	// Rendezvous: base + fixed + per-excess-byte (1500 excess).
	want := 10*time.Microsecond + 20*time.Microsecond + 1500*10*time.Nanosecond
	if got := m.SendCPU(2500); got != want {
		t.Errorf("rendezvous SendCPU = %v, want %v", got, want)
	}
	wantRecv := 5*time.Microsecond + 20*time.Microsecond + 1500*10*time.Nanosecond
	if got := m.RecvCPU(2500); got != wantRecv {
		t.Errorf("rendezvous RecvCPU = %v, want %v", got, wantRecv)
	}
	if (CostModel{}).Rendezvous(1 << 30) {
		t.Error("zero threshold must disable the rendezvous path")
	}
}

func TestRendezvousTotalCostRisesWithMessageSize(t *testing.T) {
	// The design property behind the parquet U-shape: for a fixed total
	// byte volume, the total rendezvous surcharge must INCREASE as the
	// volume is packed into fewer, larger messages (excess-byte model),
	// while the base per-message cost decreases.
	m := CostModel{
		SendOverhead:         25 * time.Microsecond,
		EagerThresholdBytes:  2000,
		RendezvousCPU:        10 * time.Microsecond,
		RendezvousPerByteCPU: 30 * time.Nanosecond,
	}
	total := 400_000 // bytes
	cost := func(msgSize int) time.Duration {
		n := total / msgSize
		return time.Duration(n) * m.SendCPU(msgSize)
	}
	if cost(4000) >= cost(8000) {
		t.Errorf("surcharge did not rise: 4KB msgs %v, 8KB msgs %v", cost(4000), cost(8000))
	}
	small := cost(1000) // eager: highest per-message total
	if small <= cost(4000) {
		t.Errorf("eager small messages should cost more in base overhead: %v vs %v", small, cost(4000))
	}
}

func TestRendezvousDelaysDelivery(t *testing.T) {
	m := CostModel{
		Latency:             100 * time.Microsecond,
		EagerThresholdBytes: 100,
		RendezvousRTT:       3 * time.Millisecond,
	}
	f := NewSimFabric(2, m)
	defer f.Close()
	got := make(chan time.Time, 1)
	f.SetHandler(1, func(int, []byte) { got <- time.Now() })
	start := time.Now()
	if err := f.Send(0, 1, make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	at := <-got
	if elapsed := at.Sub(start); elapsed < 3*time.Millisecond {
		t.Errorf("rendezvous message delivered after %v, want >= RTT", elapsed)
	}
}
