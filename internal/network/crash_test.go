package network

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestFaultPlanCrashDropsBothDirections(t *testing.T) {
	f := NewSimFabric(3, CostModel{})
	defer f.Close()
	plan := NewFaultPlan(1)
	f.SetFaultHook(plan.Hook())

	var got [3]atomic.Int64
	for i := 0; i < 3; i++ {
		i := i
		f.SetHandler(i, func(src int, payload []byte) {
			got[i].Add(1)
			PutPayload(payload)
		})
	}
	send := func(src, dst int) {
		if err := f.Send(src, dst, GetPayload(4)); err != nil {
			t.Fatal(err)
		}
	}
	wait := func(i int, want int64) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && got[i].Load() < want {
			time.Sleep(100 * time.Microsecond)
		}
		if got[i].Load() != want {
			t.Fatalf("locality %d received %d messages, want %d", i, got[i].Load(), want)
		}
	}

	send(0, 1)
	wait(1, 1)

	if plan.Crashed(1) {
		t.Fatal("locality 1 reported crashed before Crash")
	}
	plan.Crash(1)
	if !plan.Crashed(1) {
		t.Fatal("Crashed(1) = false after Crash")
	}

	// To and from the crashed locality: silently dropped.
	send(0, 1)
	send(1, 0)
	send(1, 2)
	// Between survivors: unaffected.
	send(0, 2)
	send(2, 0)
	wait(2, 1)
	wait(0, 1)
	time.Sleep(5 * time.Millisecond)
	if got[1].Load() != 1 {
		t.Errorf("crashed locality received %d messages after crash, want still 1", got[1].Load())
	}
	if plan.Injected() < 3 {
		t.Errorf("Injected() = %d, want >= 3 (the crash drops)", plan.Injected())
	}
}

func TestFaultPlanCrashAtTriggersOnOwnSends(t *testing.T) {
	f := NewSimFabric(2, CostModel{})
	defer f.Close()
	plan := NewFaultPlan(1)
	f.SetFaultHook(plan.Hook())

	var got atomic.Int64
	f.SetHandler(1, func(src int, payload []byte) {
		got.Add(1)
		PutPayload(payload)
	})
	f.SetHandler(0, func(src int, payload []byte) { PutPayload(payload) })

	// Crash locality 0 after it transmits 3 more messages. Inbound traffic
	// must not advance the trigger.
	plan.CrashAt(0, 3)
	for i := 0; i < 5; i++ {
		if err := f.Send(1, 0, GetPayload(4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := f.Send(0, 1, GetPayload(4)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && got.Load() < 3 {
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(5 * time.Millisecond)
	if got.Load() != 3 {
		t.Fatalf("locality 1 received %d messages, want exactly 3 before the armed crash fired", got.Load())
	}
	if !plan.Crashed(0) {
		t.Fatal("armed crash never fired")
	}
}
