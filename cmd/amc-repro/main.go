// Command amc-repro regenerates every table and figure of the paper's
// evaluation section. Each subcommand prints the rows/series the paper
// reports, at a configurable scale:
//
//	amc-repro [flags] timer      — §II-B flush-timer accuracy
//	amc-repro [flags] fig4       — toy: overhead vs time scatter + Pearson r
//	amc-repro [flags] fig5       — toy: phase times vs parcels-per-message
//	amc-repro [flags] fig6       — parquet: iteration times vs parcels-per-message
//	amc-repro [flags] fig7       — parquet: overhead vs time scatter + Pearson r
//	amc-repro [flags] fig8       — parquet: full parameter-grid heat map
//	amc-repro [flags] fig9       — toy: instantaneous per-phase overhead
//	amc-repro [flags] rsd        — §IV-C repeatability study
//	amc-repro [flags] adaptive   — extension: adaptive tuning comparison
//	amc-repro [flags] baselines  — ablation: coalescing strategies
//	amc-repro [flags] all        — everything above in order
//
// Flags:
//
//	-scale quick|default|full   workload size (default "default")
//	-csv                        emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	scaleName := flag.String("scale", "default", "workload scale: quick, default or full")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "default":
		scale = experiment.DefaultScale()
	case "full":
		scale = experiment.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	cmd := flag.Arg(0)
	runner := commands[cmd]
	if cmd == "all" {
		for _, name := range order {
			if err := commands[name](scale, *csv); err != nil {
				fail(name, err)
			}
		}
		return
	}
	if runner == nil {
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err := runner(scale, *csv); err != nil {
		fail(cmd, err)
	}
}

func fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "amc-repro %s: %v\n", cmd, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: amc-repro [-scale quick|default|full] [-csv] <subcommand>

subcommands: timer fig4 fig5 fig6 fig7 fig8 fig9 rsd adaptive baselines sparse stencil all
`)
}

var order = []string{"timer", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "rsd", "adaptive", "baselines", "sparse", "stencil"}

type runFunc func(scale experiment.Scale, csv bool) error

var commands = map[string]runFunc{
	"timer": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res := experiment.TimerAccuracy(0)
		emit(res.Table(), csv, start)
		return nil
	},
	"fig4": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.Fig4(s)
		if err != nil {
			return err
		}
		emit(res.Table(), csv, start)
		return nil
	},
	"fig5": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.Fig5(s)
		if err != nil {
			return err
		}
		emit(res.Table(), csv, start)
		return nil
	},
	"fig6": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.Fig6(s)
		if err != nil {
			return err
		}
		t := res.Table()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("best: nparcels=%d", res.BestNParcels())})
		emit(t, csv, start)
		return nil
	},
	"fig7": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.ParquetGrid(s)
		if err != nil {
			return err
		}
		emit(res.Fig7Table(), csv, start)
		return nil
	},
	"fig8": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.ParquetGrid(s)
		if err != nil {
			return err
		}
		t := res.Fig8Table()
		best := res.Best()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("best: %s", best.Params)})
		emit(t, csv, start)
		return nil
	},
	"fig9": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.Fig9(s)
		if err != nil {
			return err
		}
		emit(res.Table(), csv, start)
		return nil
	},
	"rsd": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.RSD(s)
		if err != nil {
			return err
		}
		emit(res.Table(), csv, start)
		return nil
	},
	"adaptive": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.Adaptive(s)
		if err != nil {
			return err
		}
		emit(res.Table(), csv, start)
		return nil
	},
	"baselines": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		rows, err := experiment.Strategies(s)
		if err != nil {
			return err
		}
		emit(experiment.StrategiesTable(rows), csv, start)
		return nil
	},
	"sparse": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.SparseBypass(s)
		if err != nil {
			return err
		}
		emit(res.Table(), csv, start)
		return nil
	},
	"stencil": func(s experiment.Scale, csv bool) error {
		start := time.Now()
		res, err := experiment.Stencil(s)
		if err != nil {
			return err
		}
		t := res.Table()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("finest-chunk speedup from coalescing: %.2fx", res.Speedup())})
		emit(t, csv, start)
		return nil
	},
}

func emit(t experiment.Table, csv bool, start time.Time) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.String())
	fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
}
