// Command amc-bench runs the parcel-pipeline micro-benchmark suite
// (package bench) outside `go test` and writes the results as JSON,
// producing the committed BENCH_parcel.json snapshot.
//
// The suite measures the three layers of the zero-allocation send
// pipeline — bundle encode/decode, port enqueue/send, and coalescer Put
// under 1/4/16 concurrent senders against a single-mutex baseline — and
// the report includes the striped-vs-baseline speedup at each
// concurrency level plus pass/fail fields for the pipeline's two
// headline claims (0 allocs/op on encode and send; >=2x coalescer
// speedup at 16 senders).
//
// Examples:
//
//	amc-bench -o BENCH_parcel.json
//	amc-bench -benchtime 2s -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/bench"
)

// result is one benchmark's measurement.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// speedup compares the striped coalescer against the single-mutex
// baseline at one sender count.
type speedup struct {
	Goroutines int     `json:"goroutines"`
	StripedNs  float64 `json:"striped_ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// report is the BENCH_parcel.json schema.
type report struct {
	GoVersion         string    `json:"go_version"`
	GOMAXPROCS        int       `json:"gomaxprocs"`
	Benchtime         string    `json:"benchtime"`
	Results           []result  `json:"results"`
	CoalescerSpeedups []speedup `json:"coalescer_speedups"`
	ZeroAllocSendPath bool      `json:"zero_alloc_send_path"`
	Speedup16OK       bool      `json:"coalescer_16x_speedup_ge_2"`
}

func main() {
	testing.Init() // register test.* flags so test.benchtime can be set
	out := flag.String("o", "BENCH_parcel.json", "output file (- for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measurement time")
	verbose := flag.Bool("v", false, "print each result as it completes")
	flag.Parse()

	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fatal(err)
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}

	run := func(name string, fn func(*testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(fn)
		res := result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		rep.Results = append(rep.Results, res)
		if *verbose {
			fmt.Fprintf(os.Stderr, "%-44s %12d iters %10.1f ns/op %6d B/op %4d allocs/op\n",
				name, r.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
		return r
	}

	encode := run("EncodeBundle", bench.EncodeBundle)
	run("DecodeBundle", bench.DecodeBundle)
	run("PortEnqueue", bench.PortEnqueue)
	send := run("PortSend", bench.PortSend)

	for _, workers := range []int{1, 4, 16} {
		w := workers
		striped := run(bench.CoalescerBenchName(false, w),
			func(b *testing.B) { bench.CoalescerPut(b, w) })
		baseline := run(bench.CoalescerBenchName(true, w),
			func(b *testing.B) { bench.CoalescerPutBaseline(b, w) })
		s := speedup{
			Goroutines: w,
			StripedNs:  float64(striped.T.Nanoseconds()) / float64(striped.N),
			BaselineNs: float64(baseline.T.Nanoseconds()) / float64(baseline.N),
		}
		if s.StripedNs > 0 {
			s.Speedup = s.BaselineNs / s.StripedNs
		}
		rep.CoalescerSpeedups = append(rep.CoalescerSpeedups, s)
		if w == 16 {
			rep.Speedup16OK = s.Speedup >= 2
		}
	}
	rep.ZeroAllocSendPath = encode.AllocsPerOp() == 0 && send.AllocsPerOp() == 0

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, zero-alloc=%v, 16-sender speedup ok=%v)\n",
		*out, len(rep.Results), rep.ZeroAllocSendPath, rep.Speedup16OK)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amc-bench:", err)
	os.Exit(1)
}
