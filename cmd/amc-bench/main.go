// Command amc-bench runs the micro-benchmark suites (package bench)
// outside `go test` and writes the results as JSON, producing the
// committed BENCH_parcel.json and BENCH_sched.json snapshots.
//
// The parcel suite measures the three layers of the zero-allocation
// send pipeline — bundle encode/decode, port enqueue/send, and
// coalescer Put under 1/4/16 concurrent senders against a single-mutex
// baseline — and its report includes the striped-vs-baseline speedup at
// each concurrency level plus pass/fail fields for the pipeline's two
// headline claims (0 allocs/op on encode and send; >=2x coalescer
// speedup at 16 senders).
//
// The sched suite measures the work-stealing task scheduler against the
// seed's single-channel design: spawn/execute throughput at 1/4/16
// workers, cold-start empty-task latency through the park/wake path, a
// steal-heavy imbalanced load, and background network work under task
// saturation. Its report includes the per-worker-count speedups and a
// pass/fail field for the scheduler's headline claim (>=2x throughput
// at 16 workers on fine-grained tasks).
//
// Examples:
//
//	amc-bench -o BENCH_parcel.json
//	amc-bench -suite sched -o BENCH_sched.json
//	amc-bench -suite all
//	amc-bench -benchtime 2s -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/bench"
)

// result is one benchmark's measurement.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Extra carries testing.B.ReportMetric values (e.g. the background
	// starvation benchmark's bg-units/task).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// speedup compares the striped coalescer against the single-mutex
// baseline at one sender count.
type speedup struct {
	Goroutines int     `json:"goroutines"`
	StripedNs  float64 `json:"striped_ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// report is the BENCH_parcel.json schema.
type report struct {
	GoVersion         string    `json:"go_version"`
	GOMAXPROCS        int       `json:"gomaxprocs"`
	Benchtime         string    `json:"benchtime"`
	Results           []result  `json:"results"`
	CoalescerSpeedups []speedup `json:"coalescer_speedups"`
	ZeroAllocSendPath bool      `json:"zero_alloc_send_path"`
	Speedup16OK       bool      `json:"coalescer_16x_speedup_ge_2"`
}

// schedSpeedup compares the work-stealing scheduler against the
// single-channel baseline at one worker count.
type schedSpeedup struct {
	Workers        int     `json:"workers"`
	WorkStealingNs float64 `json:"work_stealing_ns_per_op"`
	ChanNs         float64 `json:"chan_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

// lossPoint is one chaos measurement of the reliable-delivery layer at a
// fixed injected loss rate.
type lossPoint struct {
	LossPct          float64 `json:"loss_pct"`
	ParcelsPerSec    float64 `json:"parcels_per_sec"`
	NetworkOverhead  float64 `json:"network_overhead"`
	RetransmitsPerOp float64 `json:"retransmits_per_op"`
	DupsPerOp        float64 `json:"dups_per_op"`
}

// reliableReport is the BENCH_reliable.json schema: goodput and Eq. 4
// network overhead of a coalescing toy app over the reliable layer as the
// injected frame-loss rate grows, plus the failure-detection latency of a
// partitioned link.
type reliableReport struct {
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchtime  string      `json:"benchtime"`
	Results    []result    `json:"results"`
	LossSweep  []lossPoint `json:"loss_sweep"`
	LinkDownNs float64     `json:"link_down_detection_ns"`
	// GoodputRetainedAt5 is goodput at 5% loss divided by goodput at 0%
	// loss: the headline resilience figure.
	GoodputRetainedAt5 float64 `json:"goodput_retained_at_5pct_loss"`
}

// schedReport is the BENCH_sched.json schema.
type schedReport struct {
	GoVersion            string         `json:"go_version"`
	GOMAXPROCS           int            `json:"gomaxprocs"`
	Benchtime            string         `json:"benchtime"`
	Results              []result       `json:"results"`
	SpawnExecuteSpeedups []schedSpeedup `json:"spawn_execute_speedups"`
	Speedup16OK          bool           `json:"spawn_execute_16x_speedup_ge_2"`
	EmptyTaskLatency     schedSpeedup   `json:"empty_task_latency"`
	StealImbalance       schedSpeedup   `json:"steal_imbalance"`
}

// runner measures one benchmark, records it in a result list, and
// optionally echoes it to stderr.
type runner struct {
	verbose bool
	results *[]result
}

func (rn runner) run(name string, fn func(*testing.B)) testing.BenchmarkResult {
	r := testing.Benchmark(fn)
	res := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	if len(r.Extra) > 0 {
		res.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Extra[k] = v
		}
	}
	*rn.results = append(*rn.results, res)
	if rn.verbose {
		fmt.Fprintf(os.Stderr, "%-60s %12d iters %10.1f ns/op %6d B/op %4d allocs/op\n",
			name, r.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	return r
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func main() {
	testing.Init() // register test.* flags so test.benchtime can be set
	suite := flag.String("suite", "parcel", "benchmark suite: parcel, sched, reliable, or all")
	out := flag.String("o", "", "output file (- for stdout; default BENCH_<suite>.json)")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measurement time")
	verbose := flag.Bool("v", false, "print each result as it completes")
	flag.Parse()

	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fatal(err)
	}

	switch *suite {
	case "parcel":
		runParcel(orDefault(*out, "BENCH_parcel.json"), *benchtime, *verbose)
	case "sched":
		runSched(orDefault(*out, "BENCH_sched.json"), *benchtime, *verbose)
	case "reliable":
		runReliable(orDefault(*out, "BENCH_reliable.json"), *benchtime, *verbose)
	case "all":
		if *out != "" {
			fatal(fmt.Errorf("-o cannot be combined with -suite all; each suite writes its default file"))
		}
		runParcel("BENCH_parcel.json", *benchtime, *verbose)
		runSched("BENCH_sched.json", *benchtime, *verbose)
		runReliable("BENCH_reliable.json", *benchtime, *verbose)
	default:
		fatal(fmt.Errorf("unknown suite %q (want parcel, sched, reliable, or all)", *suite))
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func runParcel(out string, benchtime time.Duration, verbose bool) {
	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}
	rn := runner{verbose: verbose, results: &rep.Results}

	encode := rn.run("EncodeBundle", bench.EncodeBundle)
	rn.run("DecodeBundle", bench.DecodeBundle)
	rn.run("PortEnqueue", bench.PortEnqueue)
	send := rn.run("PortSend", bench.PortSend)

	for _, workers := range []int{1, 4, 16} {
		w := workers
		striped := rn.run(bench.CoalescerBenchName(false, w),
			func(b *testing.B) { bench.CoalescerPut(b, w) })
		baseline := rn.run(bench.CoalescerBenchName(true, w),
			func(b *testing.B) { bench.CoalescerPutBaseline(b, w) })
		s := speedup{
			Goroutines: w,
			StripedNs:  nsPerOp(striped),
			BaselineNs: nsPerOp(baseline),
		}
		if s.StripedNs > 0 {
			s.Speedup = s.BaselineNs / s.StripedNs
		}
		rep.CoalescerSpeedups = append(rep.CoalescerSpeedups, s)
		if w == 16 {
			rep.Speedup16OK = s.Speedup >= 2
		}
	}
	rep.ZeroAllocSendPath = encode.AllocsPerOp() == 0 && send.AllocsPerOp() == 0

	writeJSON(out, rep)
	fmt.Printf("wrote %s (%d benchmarks, zero-alloc=%v, 16-sender speedup ok=%v)\n",
		out, len(rep.Results), rep.ZeroAllocSendPath, rep.Speedup16OK)
}

func runSched(out string, benchtime time.Duration, verbose bool) {
	rep := schedReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}
	rn := runner{verbose: verbose, results: &rep.Results}

	pair := func(workers int, kind string, fn func(b *testing.B, stealing bool)) schedSpeedup {
		ws := rn.run(bench.SchedBenchName(kind, true, workers),
			func(b *testing.B) { fn(b, true) })
		ch := rn.run(bench.SchedBenchName(kind, false, workers),
			func(b *testing.B) { fn(b, false) })
		s := schedSpeedup{
			Workers:        workers,
			WorkStealingNs: nsPerOp(ws),
			ChanNs:         nsPerOp(ch),
		}
		if s.WorkStealingNs > 0 {
			s.Speedup = s.ChanNs / s.WorkStealingNs
		}
		return s
	}

	for _, workers := range []int{1, 4, 16} {
		w := workers
		s := pair(w, "SpawnExecute", func(b *testing.B, stealing bool) {
			bench.SchedSpawnExecute(b, stealing, w, 0)
		})
		rep.SpawnExecuteSpeedups = append(rep.SpawnExecuteSpeedups, s)
		if w == 16 {
			rep.Speedup16OK = s.Speedup >= 2
		}
	}
	rep.EmptyTaskLatency = pair(4, "EmptyTaskLatency", func(b *testing.B, stealing bool) {
		bench.SchedEmptyTaskLatency(b, stealing, 4)
	})
	rep.StealImbalance = pair(16, "StealImbalance", func(b *testing.B, stealing bool) {
		bench.SchedStealImbalance(b, stealing, 16)
	})
	pair(4, "BackgroundStarvation", func(b *testing.B, stealing bool) {
		bench.SchedBackgroundStarvation(b, stealing, 4)
	})

	writeJSON(out, rep)
	fmt.Printf("wrote %s (%d benchmarks, 16-worker spawn/execute speedup ok=%v)\n",
		out, len(rep.Results), rep.Speedup16OK)
}

func runReliable(out string, benchtime time.Duration, verbose bool) {
	rep := reliableReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}
	rn := runner{verbose: verbose, results: &rep.Results}

	var goodput0 float64
	for _, lossPct := range []float64{0, 1, 5, 10} {
		l := lossPct
		r := rn.run("ReliableChaos/"+bench.ReliableBenchName(l),
			func(b *testing.B) { bench.ReliableChaos(b, l) })
		p := lossPoint{
			LossPct:          l,
			ParcelsPerSec:    r.Extra["parcels/sec"],
			NetworkOverhead:  r.Extra["network-overhead"],
			RetransmitsPerOp: r.Extra["retransmits/op"],
			DupsPerOp:        r.Extra["dups/op"],
		}
		rep.LossSweep = append(rep.LossSweep, p)
		if l == 0 {
			goodput0 = p.ParcelsPerSec
		}
		if l == 5 && goodput0 > 0 {
			rep.GoodputRetainedAt5 = p.ParcelsPerSec / goodput0
		}
	}
	down := rn.run("ReliableLinkDownDetection", bench.ReliableLinkDownDetection)
	rep.LinkDownNs = nsPerOp(down)

	writeJSON(out, rep)
	fmt.Printf("wrote %s (%d benchmarks, goodput retained at 5%% loss=%.2f)\n",
		out, len(rep.Results), rep.GoodputRetainedAt5)
}

func writeJSON(out string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amc-bench:", err)
	os.Exit(1)
}
