// Command amc-bench runs the micro-benchmark suites (package bench)
// outside `go test` and writes the results as JSON, producing the
// committed BENCH_parcel.json and BENCH_sched.json snapshots.
//
// The parcel suite measures the three layers of the zero-allocation
// pipeline — bundle encode plus borrowed decode (with the copying
// decoder as baseline), port enqueue/send, and coalescer Put under
// 1/4/16 concurrent senders against a single-mutex baseline — and its
// report includes the striped-vs-baseline speedup at each concurrency
// level plus pass/fail fields for the pipeline's headline claims
// (0 allocs/op on encode, borrowed decode and send; >=2x coalescer
// speedup at 16 senders).
//
// The e2e suite measures end-to-end delivered messages/sec/core through
// the full stack (Apply → coalescing → fabric → batched rx → decode →
// task) on both the simulated and the TCP fabric, across parcel sizes
// and coalescing settings, A/B-ing the borrowing decode against the
// copying baseline; -quick shrinks it to a CI-smoke size.
//
// The sched suite measures the work-stealing task scheduler against the
// seed's single-channel design: spawn/execute throughput at 1/4/16
// workers, cold-start empty-task latency through the park/wake path, a
// steal-heavy imbalanced load, and background network work under task
// saturation. Its report includes the per-worker-count speedups and a
// pass/fail field for the scheduler's headline claim (>=2x throughput
// at 16 workers on fine-grained tasks).
//
// The taskbench suite is the Task Bench-style workload harness
// (internal/taskbench): all eight dependence patterns are executed
// across a 3×3 coalescing-parameter grid on two simulated localities,
// recording per-pattern execution time, Eq. 4 network overhead and the
// Pearson correlation between the two, followed by the adaptive
// phase demo (stencil → fft → random under a live OverheadTuner).
// -quick shrinks it to a CI-smoke size.
//
// The adaptive suite A/Bs the two online controllers — the global
// OverheadTuner against the per-destination multi-knob MultiTuner — on a
// mixed uniform workload and on the deliberately skewed fan-in pattern,
// from identical uncoalesced starting parameters, reporting wall time,
// Eq. 4 overhead, convergence time, decision counts and steady-state
// stability per arm. -quick shrinks it to a CI-smoke size.
//
// The fft suite runs the distributed 2-D FFT app (internal/apps/fft)
// on the collectives layer: {direct, ring} all-to-all variants ×
// {off, static grid, adaptive MultiTuner} coalescing × grid sizes,
// each cell verified bit-exact against the sequential reference and
// measured for wall time and Eq. 4 overhead (with the per-variant
// Pearson correlation between the two), then three-node multi-process
// cluster runs of the same app over loopback TCP. -quick shrinks it to
// a CI-smoke size.
//
// An unknown -suite value prints the registry of available suites and
// exits nonzero; `-suite help` prints the same listing.
//
// Examples:
//
//	amc-bench -o BENCH_parcel.json
//	amc-bench -suite sched -o BENCH_sched.json
//	amc-bench -suite taskbench -o BENCH_taskbench.json
//	amc-bench -suite taskbench -quick
//	amc-bench -suite all
//	amc-bench -benchtime 2s -v
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/bench"
	"repro/internal/cluster"
	"repro/internal/taskbench"
)

// result is one benchmark's measurement.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Extra carries testing.B.ReportMetric values (e.g. the background
	// starvation benchmark's bg-units/task).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// speedup compares the striped coalescer against the single-mutex
// baseline at one sender count.
type speedup struct {
	Goroutines int     `json:"goroutines"`
	StripedNs  float64 `json:"striped_ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// report is the BENCH_parcel.json schema.
type report struct {
	partialStatus
	GoVersion         string    `json:"go_version"`
	GOMAXPROCS        int       `json:"gomaxprocs"`
	Benchtime         string    `json:"benchtime"`
	Results           []result  `json:"results"`
	CoalescerSpeedups []speedup `json:"coalescer_speedups"`
	ZeroAllocSendPath bool      `json:"zero_alloc_send_path"`
	// ZeroAllocRecvPath: the borrowed DecodeBundle reached 0 allocs/op.
	// DecodeSpeedup is copying-decode ns/op over borrowed-decode ns/op.
	ZeroAllocRecvPath bool    `json:"zero_alloc_recv_path"`
	DecodeSpeedup     float64 `json:"decode_speedup_vs_copy"`
	Speedup16OK       bool    `json:"coalescer_16x_speedup_ge_2"`
}

// schedSpeedup compares the work-stealing scheduler against the
// single-channel baseline at one worker count.
type schedSpeedup struct {
	Workers        int     `json:"workers"`
	WorkStealingNs float64 `json:"work_stealing_ns_per_op"`
	ChanNs         float64 `json:"chan_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

// lossPoint is one chaos measurement of the reliable-delivery layer at a
// fixed injected loss rate.
type lossPoint struct {
	LossPct          float64 `json:"loss_pct"`
	ParcelsPerSec    float64 `json:"parcels_per_sec"`
	NetworkOverhead  float64 `json:"network_overhead"`
	RetransmitsPerOp float64 `json:"retransmits_per_op"`
	DupsPerOp        float64 `json:"dups_per_op"`
}

// reliableReport is the BENCH_reliable.json schema: goodput and Eq. 4
// network overhead of a coalescing toy app over the reliable layer as the
// injected frame-loss rate grows, plus the failure-detection latency of a
// partitioned link.
type reliableReport struct {
	partialStatus
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchtime  string      `json:"benchtime"`
	Results    []result    `json:"results"`
	LossSweep  []lossPoint `json:"loss_sweep"`
	LinkDownNs float64     `json:"link_down_detection_ns"`
	// GoodputRetainedAt5 is goodput at 5% loss divided by goodput at 0%
	// loss: the headline resilience figure.
	GoodputRetainedAt5 float64 `json:"goodput_retained_at_5pct_loss"`
}

// schedReport is the BENCH_sched.json schema.
type schedReport struct {
	partialStatus
	GoVersion            string         `json:"go_version"`
	GOMAXPROCS           int            `json:"gomaxprocs"`
	Benchtime            string         `json:"benchtime"`
	Results              []result       `json:"results"`
	SpawnExecuteSpeedups []schedSpeedup `json:"spawn_execute_speedups"`
	Speedup16OK          bool           `json:"spawn_execute_16x_speedup_ge_2"`
	EmptyTaskLatency     schedSpeedup   `json:"empty_task_latency"`
	StealImbalance       schedSpeedup   `json:"steal_imbalance"`
}

// runner measures one benchmark, records it in a result list, and
// optionally echoes it to stderr.
type runner struct {
	verbose bool
	results *[]result
}

func (rn runner) run(name string, fn func(*testing.B)) testing.BenchmarkResult {
	r := testing.Benchmark(fn)
	res := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	if len(r.Extra) > 0 {
		res.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Extra[k] = v
		}
	}
	*rn.results = append(*rn.results, res)
	if rn.verbose {
		fmt.Fprintf(os.Stderr, "%-60s %12d iters %10.1f ns/op %6d B/op %4d allocs/op\n",
			name, r.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	return r
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// options carries the command-line knobs shared by every suite.
type options struct {
	benchtime time.Duration
	verbose   bool
	quick     bool
}

// suiteDef registers one runnable suite: its default output file, a
// one-line description for the usage listing, and the runner. A runner
// that fails mid-suite still writes whatever it measured — marked with
// "partial": true and an "error" field — and returns the error so main
// exits non-zero; a consumer of the JSON must check the marker before
// trusting the numbers.
type suiteDef struct {
	name       string
	defaultOut string
	desc       string
	run        func(out string, opts options) error
}

// suites is the registry the -suite flag is validated against; "all"
// runs every entry with its default output file.
var suites = []suiteDef{
	{"parcel", "BENCH_parcel.json", "zero-allocation send+receive pipeline and striped coalescer vs single-mutex baseline", runParcel},
	{"sched", "BENCH_sched.json", "work-stealing task scheduler vs single-channel baseline", runSched},
	{"reliable", "BENCH_reliable.json", "goodput and Eq. 4 overhead under injected frame loss; link-down detection", runReliable},
	{"taskbench", "BENCH_taskbench.json", "Task Bench-style pattern sweep: per-pattern overhead/time correlation + adaptive phase demo", runTaskbench},
	{"health", "BENCH_health.json", "crash-stop chaos: phi-accrual detection latency, false-positive soak, survive-crash workload", runHealth},
	{"e2e", "BENCH_e2e.json", "end-to-end messages/sec/core on both fabrics: borrowed vs copying decode across sizes and coalescing", runE2E},
	{"adaptive", "BENCH_adaptive.json", "controller A/B: global OverheadTuner vs per-destination MultiTuner on uniform and skewed workloads", runAdaptive},
	{"cluster", "BENCH_cluster.json", "multi-process cluster: weak/strong scaling over real TCP sockets + crash-recovery run", runCluster},
	{"fft", "BENCH_fft.json", "distributed 2-D FFT on collectives: all-to-all variants x coalescing arms, Eq. 4 correlation, 3-node cluster runs", runFFT},
}

// partialStatus is embedded in every report schema: when a suite errors
// after measurement started, the report is still written with Partial
// set and the error recorded, and amc-bench exits non-zero.
type partialStatus struct {
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
}

func (p *partialStatus) markPartial(err error) {
	p.Partial = true
	p.Error = err.Error()
}

// lookupSuite resolves a -suite value against the registry.
func lookupSuite(name string) (suiteDef, bool) {
	for _, s := range suites {
		if s.name == name {
			return s, true
		}
	}
	return suiteDef{}, false
}

// listSuites prints the available suites (the -suite validation error
// path, so unknown values fail loudly instead of silently doing
// nothing).
func listSuites(w io.Writer) {
	fmt.Fprintln(w, "available suites:")
	for _, s := range suites {
		fmt.Fprintf(w, "  %-10s %s (writes %s)\n", s.name, s.desc, s.defaultOut)
	}
	fmt.Fprintf(w, "  %-10s run every suite with its default output file\n", "all")
}

func main() {
	// Re-exec mode: the cluster suite spawns this same binary as its
	// amc-node processes, so one build artifact is both driver and node.
	if len(os.Args) > 1 && os.Args[1] == "-as-node" {
		os.Exit(cluster.NodeMain(os.Args[2:], os.Stderr))
	}

	testing.Init() // register test.* flags so test.benchtime can be set
	suite := flag.String("suite", "parcel", "benchmark suite to run (see -suite help)")
	out := flag.String("o", "", "output file (- for stdout; default BENCH_<suite>.json)")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measurement time")
	verbose := flag.Bool("v", false, "print each result as it completes")
	quick := flag.Bool("quick", false, "shrink the taskbench suite to CI-smoke size")
	flag.Parse()

	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fatal(err)
	}

	opts := options{benchtime: *benchtime, verbose: *verbose, quick: *quick}
	switch *suite {
	case "all":
		if *out != "" {
			fatal(fmt.Errorf("-o cannot be combined with -suite all; each suite writes its default file"))
		}
		failed := 0
		for _, s := range suites {
			if err := s.run(s.defaultOut, opts); err != nil {
				fmt.Fprintf(os.Stderr, "amc-bench: suite %s failed: %v\n", s.name, err)
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "amc-bench: %d suite(s) failed; reports carry the partial marker\n", failed)
			os.Exit(1)
		}
	case "help", "list":
		listSuites(os.Stdout)
	default:
		s, ok := lookupSuite(*suite)
		if !ok {
			fmt.Fprintf(os.Stderr, "amc-bench: unknown suite %q\n", *suite)
			listSuites(os.Stderr)
			os.Exit(2)
		}
		if err := s.run(orDefault(*out, s.defaultOut), opts); err != nil {
			fatal(fmt.Errorf("suite %s: %w", s.name, err))
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func runParcel(out string, opts options) error {
	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  opts.benchtime.String(),
	}
	rn := runner{verbose: opts.verbose, results: &rep.Results}

	encode := rn.run("EncodeBundle", bench.EncodeBundle)
	decode := rn.run("DecodeBundle", bench.DecodeBundle)
	decodeCopy := rn.run("DecodeBundleCopy", bench.DecodeBundleCopy)
	rn.run("PortEnqueue", bench.PortEnqueue)
	send := rn.run("PortSend", bench.PortSend)
	rep.ZeroAllocRecvPath = decode.AllocsPerOp() == 0
	if ns := nsPerOp(decode); ns > 0 {
		rep.DecodeSpeedup = nsPerOp(decodeCopy) / ns
	}

	for _, workers := range []int{1, 4, 16} {
		w := workers
		striped := rn.run(bench.CoalescerBenchName(false, w),
			func(b *testing.B) { bench.CoalescerPut(b, w) })
		baseline := rn.run(bench.CoalescerBenchName(true, w),
			func(b *testing.B) { bench.CoalescerPutBaseline(b, w) })
		s := speedup{
			Goroutines: w,
			StripedNs:  nsPerOp(striped),
			BaselineNs: nsPerOp(baseline),
		}
		if s.StripedNs > 0 {
			s.Speedup = s.BaselineNs / s.StripedNs
		}
		rep.CoalescerSpeedups = append(rep.CoalescerSpeedups, s)
		if w == 16 {
			rep.Speedup16OK = s.Speedup >= 2
		}
	}
	rep.ZeroAllocSendPath = encode.AllocsPerOp() == 0 && send.AllocsPerOp() == 0

	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d benchmarks, zero-alloc send=%v recv=%v, decode speedup=%.2fx, 16-sender speedup ok=%v)\n",
		out, len(rep.Results), rep.ZeroAllocSendPath, rep.ZeroAllocRecvPath, rep.DecodeSpeedup, rep.Speedup16OK)
	return nil
}

// e2eReport is the BENCH_e2e.json schema: end-to-end delivered active
// messages per second per core through the full runtime stack on both
// fabrics, with the borrowing decode measured against the copying
// baseline in every cell (the improvement the receive-path work claims).
type e2eReport struct {
	partialStatus
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Quick      bool            `json:"quick"`
	E2E        bench.E2EResult `json:"e2e"`
	// BorrowedFasterOK: the geomean borrowed/copy throughput ratio is
	// >= 1, i.e. the zero-allocation receive path did not lose end-to-end.
	BorrowedFasterOK bool `json:"borrowed_geomean_improvement_ge_1"`
}

func runE2E(out string, opts options) error {
	rep := e2eReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.quick,
	}
	cfg := bench.E2EConfig{Quick: opts.quick}
	if opts.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := bench.RunE2E(cfg)
	rep.E2E = res // partial sweep progress is meaningful even on error
	if err != nil {
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	rep.BorrowedFasterOK = res.GeomeanImprovement >= 1
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d points, geomean borrowed/copy improvement=%.3fx, ok=%v)\n",
		out, len(rep.E2E.Points), rep.E2E.GeomeanImprovement, rep.BorrowedFasterOK)
	return nil
}

func runSched(out string, opts options) error {
	rep := schedReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  opts.benchtime.String(),
	}
	rn := runner{verbose: opts.verbose, results: &rep.Results}

	pair := func(workers int, kind string, fn func(b *testing.B, stealing bool)) schedSpeedup {
		ws := rn.run(bench.SchedBenchName(kind, true, workers),
			func(b *testing.B) { fn(b, true) })
		ch := rn.run(bench.SchedBenchName(kind, false, workers),
			func(b *testing.B) { fn(b, false) })
		s := schedSpeedup{
			Workers:        workers,
			WorkStealingNs: nsPerOp(ws),
			ChanNs:         nsPerOp(ch),
		}
		if s.WorkStealingNs > 0 {
			s.Speedup = s.ChanNs / s.WorkStealingNs
		}
		return s
	}

	for _, workers := range []int{1, 4, 16} {
		w := workers
		s := pair(w, "SpawnExecute", func(b *testing.B, stealing bool) {
			bench.SchedSpawnExecute(b, stealing, w, 0)
		})
		rep.SpawnExecuteSpeedups = append(rep.SpawnExecuteSpeedups, s)
		if w == 16 {
			rep.Speedup16OK = s.Speedup >= 2
		}
	}
	rep.EmptyTaskLatency = pair(4, "EmptyTaskLatency", func(b *testing.B, stealing bool) {
		bench.SchedEmptyTaskLatency(b, stealing, 4)
	})
	rep.StealImbalance = pair(16, "StealImbalance", func(b *testing.B, stealing bool) {
		bench.SchedStealImbalance(b, stealing, 16)
	})
	pair(4, "BackgroundStarvation", func(b *testing.B, stealing bool) {
		bench.SchedBackgroundStarvation(b, stealing, 4)
	})

	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d benchmarks, 16-worker spawn/execute speedup ok=%v)\n",
		out, len(rep.Results), rep.Speedup16OK)
	return nil
}

func runReliable(out string, opts options) error {
	rep := reliableReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  opts.benchtime.String(),
	}
	rn := runner{verbose: opts.verbose, results: &rep.Results}

	var goodput0 float64
	for _, lossPct := range []float64{0, 1, 5, 10} {
		l := lossPct
		r := rn.run("ReliableChaos/"+bench.ReliableBenchName(l),
			func(b *testing.B) { bench.ReliableChaos(b, l) })
		p := lossPoint{
			LossPct:          l,
			ParcelsPerSec:    r.Extra["parcels/sec"],
			NetworkOverhead:  r.Extra["network-overhead"],
			RetransmitsPerOp: r.Extra["retransmits/op"],
			DupsPerOp:        r.Extra["dups/op"],
		}
		rep.LossSweep = append(rep.LossSweep, p)
		if l == 0 {
			goodput0 = p.ParcelsPerSec
		}
		if l == 5 && goodput0 > 0 {
			rep.GoodputRetainedAt5 = p.ParcelsPerSec / goodput0
		}
	}
	down := rn.run("ReliableLinkDownDetection", bench.ReliableLinkDownDetection)
	rep.LinkDownNs = nsPerOp(down)

	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d benchmarks, goodput retained at 5%% loss=%.2f)\n",
		out, len(rep.Results), rep.GoodputRetainedAt5)
	return nil
}

// taskbenchReport is the BENCH_taskbench.json schema: the Task Bench-
// style pattern sweep (per-pattern {execution time, Eq. 4 overhead,
// Pearson r} across the coalescing grid) plus the adaptive phase demo.
type taskbenchReport struct {
	partialStatus
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Localities int    `json:"localities"`
	// Graph echoes the swept workload shape.
	Graph struct {
		Width       int `json:"width"`
		Steps       int `json:"steps"`
		Iterations  int `json:"iterations"`
		OutputBytes int `json:"output_bytes"`
	} `json:"graph"`
	Patterns  []taskbench.PatternReport `json:"patterns"`
	PhaseDemo taskbench.PhaseDemoResult `json:"phase_demo"`
	// BestAbsR is the strongest per-pattern |r|; CorrelationOK is the
	// acceptance headline (some pattern reaches |r| >= 0.8, reproducing
	// the paper's overhead/time correlation claim), and
	// PhaseReconvergedOK that the tuner settled on different parameters
	// for at least two phases.
	BestAbsR           float64 `json:"best_abs_r"`
	BestRPattern       string  `json:"best_r_pattern"`
	CorrelationOK      bool    `json:"correlation_abs_r_ge_0_8"`
	PhaseReconvergedOK bool    `json:"phase_demo_reconverged"`
}

func runTaskbench(out string, opts options) error {
	sweepCfg := bench.TaskbenchSweepConfig(opts.quick)
	phaseCfg := bench.TaskbenchPhaseConfig(opts.quick)

	rep := taskbenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.quick,
		Localities: sweepCfg.Localities,
	}
	rep.Graph.Width = sweepCfg.Graph.Width
	rep.Graph.Steps = sweepCfg.Graph.Steps
	rep.Graph.Iterations = sweepCfg.Graph.Iterations
	rep.Graph.OutputBytes = sweepCfg.Graph.OutputBytes

	reports, err := taskbench.RunSweep(sweepCfg)
	if err != nil {
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	rep.Patterns = reports
	for _, pr := range reports {
		if opts.verbose {
			fmt.Fprintf(os.Stderr, "%-20s r=%+.3f valid=%v best=%.2fms (n=%d t=%gus) worst=%.2fms\n",
				pr.Pattern, pr.PearsonR, pr.RValid, pr.Best.WallMS, pr.Best.NParcels, pr.Best.IntervalUS, pr.Worst.WallMS)
		}
		if pr.RValid && math.Abs(pr.PearsonR) > rep.BestAbsR {
			rep.BestAbsR = math.Abs(pr.PearsonR)
			rep.BestRPattern = pr.Pattern
		}
	}
	rep.CorrelationOK = rep.BestAbsR >= 0.8

	demo, err := taskbench.RunPhaseDemo(phaseCfg)
	if err != nil {
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	rep.PhaseDemo = demo
	rep.PhaseReconvergedOK = demo.Reconverged

	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d patterns, best |r|=%.3f on %s, correlation ok=%v, phase reconverged=%v)\n",
		out, len(rep.Patterns), rep.BestAbsR, rep.BestRPattern, rep.CorrelationOK, rep.PhaseReconvergedOK)
	return nil
}

// healthReport is the BENCH_health.json schema: phi-accrual detection
// latency, the no-crash false-positive soak, and the survive-crash
// workload, with pass/fail acceptance fields for the robustness
// headline claims.
type healthReport struct {
	partialStatus
	GoVersion    string             `json:"go_version"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Quick        bool               `json:"quick"`
	Detector     healthDetectorInfo `json:"detector"`
	SoakDetector healthDetectorInfo `json:"soak_detector"`
	Health       bench.HealthReport `json:"health"`
	// ZeroFalsePositives: no suspicions over the soak. SurviveCrashOK:
	// the recovery run completed every task on the survivors.
	// FailFastOK: the non-recovery run failed cleanly (it reaching the
	// report at all means it did not hang).
	ZeroFalsePositives bool `json:"zero_false_positives"`
	SurviveCrashOK     bool `json:"survive_crash_ok"`
	FailFastOK         bool `json:"fail_fast_ok"`
}

// healthDetectorInfo echoes the phi-accrual parameters under test.
type healthDetectorInfo struct {
	HeartbeatIntervalUS float64 `json:"heartbeat_interval_us"`
	PhiThreshold        float64 `json:"phi_threshold"`
	WindowSize          int     `json:"window_size"`
	GraceUS             float64 `json:"grace_us"`
}

func detectorInfo(c bench.HealthConfig, soak bool) healthDetectorInfo {
	det := c.Detector.WithDefaults()
	if soak {
		det = c.SoakDetector.WithDefaults()
	}
	return healthDetectorInfo{
		HeartbeatIntervalUS: float64(det.HeartbeatInterval.Microseconds()),
		PhiThreshold:        det.PhiThreshold,
		WindowSize:          det.Window,
		GraceUS:             float64(det.Grace.Microseconds()),
	}
}

func runHealth(out string, opts options) error {
	cfg := bench.HealthSuiteConfig(opts.quick)
	rep := healthReport{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Quick:        opts.quick,
		Detector:     detectorInfo(cfg, false),
		SoakDetector: detectorInfo(cfg, true),
	}
	hr, err := bench.RunHealth(cfg)
	rep.Health = hr // partial progress is meaningful even on error
	if err != nil {
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	rep.ZeroFalsePositives = hr.SoakSuspicions == 0
	rep.SurviveCrashOK = hr.SurviveTasks == int64(cfg.Graph.WithDefaults().TotalTasks())
	rep.FailFastOK = hr.FailFastMS > 0
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (detection mean=%.1fms over %d trials, soak %ds suspicions=%d, survive-crash ok=%v, fail-fast=%.1fms)\n",
		out, rep.Health.DetectionMeanMS, rep.Health.DetectionTrials,
		int(rep.Health.SoakSeconds), rep.Health.SoakSuspicions,
		rep.SurviveCrashOK, rep.Health.FailFastMS)
	return nil
}

// adaptiveReport is the BENCH_adaptive.json schema: the controller A/B
// harness (internal/taskbench.RunAB) comparing the global OverheadTuner
// against the per-destination MultiTuner on a mixed uniform workload and
// on the skewed fan-in pattern, from identical uncoalesced starting
// parameters. Each arm records wall time, mean Eq. 4 overhead,
// convergence time, decision counts and steady-state stability.
type adaptiveReport struct {
	partialStatus
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick"`
	Localities int                `json:"localities"`
	Runs       int                `json:"runs_per_arm"`
	AB         taskbench.ABResult `json:"ab"`
	// MultiWinsSkewedOK: on the skewed workload the MultiTuner arm beat
	// the global arm on wall time or Eq. 4 overhead at equal work.
	// MultiNoWorseUniformOK: on the uniform workload the MultiTuner arm
	// stayed within 5% of the global arm's wall time.
	MultiWinsSkewedOK     bool `json:"multi_wins_skewed"`
	MultiNoWorseUniformOK bool `json:"multi_no_worse_uniform"`
}

func runAdaptive(out string, opts options) error {
	cfg := bench.TaskbenchABConfig(opts.quick)
	cfg = cfg.WithDefaults()
	rep := adaptiveReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.quick,
		Localities: cfg.Localities,
		Runs:       cfg.Runs,
	}
	res, err := taskbench.RunAB(cfg)
	rep.AB = res // partial arm progress is meaningful even on error
	if err != nil {
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	for _, wl := range res.Workloads {
		if opts.verbose {
			fmt.Fprintf(os.Stderr, "%-10s global: wall=%.2fms oh=%.4f dec=%d conv=%.0fms | multi: wall=%.2fms oh=%.4f dec=%d conv=%.0fms dests=%d\n",
				wl.Workload, wl.Global.MeanWallMS, wl.Global.MeanOverhead, wl.Global.Decisions, wl.Global.ConvergenceMS,
				wl.Multi.MeanWallMS, wl.Multi.MeanOverhead, wl.Multi.Decisions, wl.Multi.ConvergenceMS, wl.Multi.TrackedDests)
		}
		switch wl.Workload {
		case "skewed":
			rep.MultiWinsSkewedOK = wl.WallRatio > 1 || wl.OverheadRatio > 1
		case "uniform":
			rep.MultiNoWorseUniformOK = wl.WallRatio >= 0.95
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d workloads, multi wins skewed=%v, no worse uniform=%v)\n",
		out, len(rep.AB.Workloads), rep.MultiWinsSkewedOK, rep.MultiNoWorseUniformOK)
	return nil
}

// clusterReport is the BENCH_cluster.json schema: weak and strong
// scaling of the Task Bench stencil across real amc-node OS processes on
// loopback TCP, plus a crash-recovery run where one node is hard-killed
// mid-benchmark and the survivors detect it through gossiped membership
// and finish its partition.
type clusterReport struct {
	partialStatus
	GoVersion  string                   `json:"go_version"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Quick      bool                     `json:"quick"`
	Cluster    bench.ClusterSuiteResult `json:"cluster"`
	// AllCompleted: every scaling run executed its whole graph.
	// RecoveryOK: the crash run detected the kill and still completed.
	// PartitionHealOK: every partition scenario completed its graph
	// post-heal and, when rejoin was armed, re-converged.
	AllCompleted    bool `json:"all_completed"`
	RecoveryOK      bool `json:"recovery_ok"`
	PartitionHealOK bool `json:"partition_heal_ok"`
	// NodeStderrTails, present only on failure, holds the tail of each
	// node's stderr from the run that killed the suite.
	NodeStderrTails map[int]string `json:"node_stderr_tails,omitempty"`
}

func runCluster(out string, opts options) error {
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolving own binary for node re-exec: %w", err)
	}
	rep := clusterReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.quick,
	}
	cfg := bench.ClusterConfig{
		NodeCommand: []string{self, "-as-node"},
		Quick:       opts.quick,
	}
	if opts.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := bench.RunClusterSuite(cfg)
	rep.Cluster = res // partial sweep progress is meaningful even on error
	if err != nil {
		var cre *bench.ClusterRunError
		if errors.As(err, &cre) {
			rep.NodeStderrTails = cre.StderrTails
		}
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	rep.AllCompleted = true
	for _, p := range append(append([]bench.ClusterPoint(nil), res.WeakScaling...), res.StrongScaling...) {
		if !p.Completed {
			rep.AllCompleted = false
		}
	}
	rep.RecoveryOK = res.Recovery != nil && res.Recovery.Detected && res.Recovery.Completed
	rep.PartitionHealOK = len(res.PartitionHeal) > 0
	for _, p := range res.PartitionHeal {
		if !p.Completed {
			rep.PartitionHealOK = false
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d weak + %d strong scaling points, %d partition scenarios, all completed=%v, recovery ok=%v, partition heal ok=%v)\n",
		out, len(res.WeakScaling), len(res.StrongScaling), len(res.PartitionHeal), rep.AllCompleted, rep.RecoveryOK, rep.PartitionHealOK)
	return nil
}

// fftReport is the BENCH_fft.json schema: the distributed 2-D FFT
// benchmark (internal/apps/fft over collectives) swept across
// {all-to-all algorithm variant × coalescing arm (static grid +
// adaptive MultiTuner) × grid size}, each cell verified bit-exact
// against the sequential reference and measured for wall time and Eq. 4
// network overhead, plus three-node multi-process cluster runs of the
// same app over real TCP sockets.
type fftReport struct {
	partialStatus
	GoVersion  string               `json:"go_version"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Quick      bool                 `json:"quick"`
	FFT        bench.FFTSuiteResult `json:"fft"`
	// AllVerified: every sweep cell and cluster run was bit-exact.
	// RingBeatsDirectOK: the paced ring rotation beat the direct burst on
	// wall time or Eq. 4 overhead in at least one matched cell.
	// ClusterVerifiedOK: every cluster run (>= 3 real processes) verified.
	AllVerified       bool `json:"all_verified"`
	RingBeatsDirectOK bool `json:"ring_beats_direct"`
	ClusterVerifiedOK bool `json:"cluster_verified"`
}

func runFFT(out string, opts options) error {
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolving own binary for node re-exec: %w", err)
	}
	rep := fftReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.quick,
	}
	cfg := bench.FFTConfig{
		NodeCommand: []string{self, "-as-node"},
		Quick:       opts.quick,
	}
	if opts.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := bench.RunFFTSuite(cfg)
	rep.FFT = res // partial sweep progress is meaningful even on error
	if err != nil {
		return failPartial(out, &rep, &rep.partialStatus, err)
	}
	rep.AllVerified = len(res.Points) > 0
	for _, p := range res.Points {
		if !p.Verified {
			rep.AllVerified = false
		}
	}
	rep.ClusterVerifiedOK = len(res.Cluster) > 0
	for _, p := range res.Cluster {
		if !p.Verified || !p.Completed {
			rep.ClusterVerifiedOK = false
		}
		if !p.Verified {
			rep.AllVerified = false
		}
	}
	rep.RingBeatsDirectOK = len(res.RingWins) > 0
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(statusW(out), "wrote %s (%d sweep cells, %d cluster runs, all verified=%v, ring beats direct=%v)\n",
		out, len(rep.FFT.Points), len(rep.FFT.Cluster), rep.AllVerified, rep.RingBeatsDirectOK)
	return nil
}

// failPartial writes the partial report with its marker set and returns
// the suite error (joined with any write error).
func failPartial(out string, rep any, st *partialStatus, err error) error {
	st.markPartial(err)
	if werr := writeJSON(out, rep); werr != nil {
		return fmt.Errorf("%w (and writing partial report failed: %v)", err, werr)
	}
	fmt.Fprintf(os.Stderr, "amc-bench: wrote PARTIAL report %s: %v\n", out, err)
	return err
}

// statusW is where a suite's one-line human summary goes: stderr when
// the JSON report itself is streaming to stdout (`-o -`), so the
// output stays machine-parseable, stdout otherwise.
func statusW(out string) io.Writer {
	if out == "-" {
		return os.Stderr
	}
	return os.Stdout
}

func writeJSON(out string, rep any) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amc-bench:", err)
	os.Exit(1)
}
