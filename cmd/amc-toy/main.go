// Command amc-toy runs the paper's toy application (Listing 1) once with
// explicit parameters and prints the per-phase Section III metrics — the
// closest analog of running the original HPX example with
// --hpx:print-counter flags.
//
// Example:
//
//	amc-toy -parcels 50000 -phases 4 -nparcels 128 -wait 4000us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/toy"
	"repro/internal/coalescing"
	"repro/internal/trace"
)

func main() {
	parcels := flag.Int("parcels", 20000, "parcels per phase (paper: 1000000)")
	phases := flag.Int("phases", 4, "number of phases")
	nparcels := flag.Int("nparcels", 16, "parcels to coalesce per message")
	wait := flag.Duration("wait", 4*time.Millisecond, "flush wait time")
	localities := flag.Int("localities", 2, "number of localities")
	workers := flag.Int("workers", 4, "workers per locality")
	bidi := flag.Bool("bidirectional", false, "both localities send, as in Listing 1")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	flag.Parse()

	var buf *trace.Buffer
	if *traceOut != "" {
		buf = trace.New(1 << 14)
	}
	res, err := toy.Run(toy.Config{
		Localities:         *localities,
		WorkersPerLocality: *workers,
		ParcelsPerPhase:    *parcels,
		Phases:             *phases,
		Params:             coalescing.Params{NParcels: *nparcels, Interval: *wait},
		Bidirectional:      *bidi,
		Trace:              buf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "amc-toy: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("toy application: %d parcels/phase × %d phases, %s\n\n",
		*parcels, *phases, res.PhaseResults[0].Params)
	fmt.Printf("%-10s %12s %10s %10s %12s\n", "phase", "wall", "n_oh", "t_o(µs)", "tasks")
	for i, p := range res.PhaseResults {
		fmt.Printf("%-10d %12v %10.4f %10.2f %12d\n",
			i+1, p.Wall.Round(time.Microsecond), p.NetworkOverhead(), p.TaskOverheadUS(), p.Tasks)
	}
	fmt.Printf("\ntotal %v — %d parcels in %d messages (%.1f parcels/message)\n",
		res.Total.Round(time.Millisecond), res.ParcelsSent, res.MessagesSent,
		float64(res.ParcelsSent)/float64(res.MessagesSent))

	if buf != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amc-toy: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := buf.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "amc-toy: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s written to %s (open in chrome://tracing)\n", buf.Summary(), *traceOut)
	}
}
