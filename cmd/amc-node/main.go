// Command amc-node runs one locality of a multi-process AMC cluster
// over real TCP sockets: it listens on -bind, joins the cluster through
// the -seeds contacts (node 0 conventionally runs with none and is
// everyone else's seed), gossips SWIM-style membership over the
// phi-accrual failure detector, and executes its partition of a Task
// Bench-style dependency graph. Node 0 aggregates every node's result
// into one JSON report.
//
// Exit codes: 0 success, 1 error, 3 clean fail-fast on a detected peer
// crash (or on this node being condemned by the cluster).
//
// A three-node cluster on one machine:
//
//	amc-node -id 0 -n 3 -bind 127.0.0.1:9100 -result cluster.json &
//	amc-node -id 1 -n 3 -bind 127.0.0.1:9101 -seeds 0@127.0.0.1:9100 &
//	amc-node -id 2 -n 3 -bind 127.0.0.1:9102 -seeds 0@127.0.0.1:9100 &
package main

import (
	"os"

	"repro/internal/cluster"
)

func main() {
	os.Exit(cluster.NodeMain(os.Args[1:], os.Stderr))
}
