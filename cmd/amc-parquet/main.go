// Command amc-parquet runs the scaled parquet application once with
// explicit coalescing parameters and prints per-iteration metrics.
//
// Example (the paper's trial configuration, scaled):
//
//	amc-parquet -nc 24 -iterations 3 -nparcels 4 -wait 5000us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/parquet"
	"repro/internal/coalescing"
)

func main() {
	nc := flag.Int("nc", 24, "linear tensor dimension Nc (paper: 512)")
	iterations := flag.Int("iterations", 3, "solver iterations")
	nparcels := flag.Int("nparcels", 4, "parcels to coalesce per message")
	wait := flag.Duration("wait", 5*time.Millisecond, "flush wait time")
	localities := flag.Int("localities", 4, "number of localities")
	workers := flag.Int("workers", 4, "workers per locality")
	flag.Parse()

	res, err := parquet.Run(parquet.Config{
		Localities:         *localities,
		WorkersPerLocality: *workers,
		Nc:                 *nc,
		Iterations:         *iterations,
		Params:             coalescing.Params{NParcels: *nparcels, Interval: *wait},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "amc-parquet: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("parquet: Nc=%d (%d rotation parcels of %d complex each per locality per iteration), %d localities, nparcels=%d wait=%v\n\n",
		*nc, 8**nc**nc, *nc, *localities, *nparcels, *wait)
	fmt.Printf("%-11s %12s %10s %10s %12s\n", "iteration", "wall", "n_oh", "t_o(µs)", "tasks")
	for i, it := range res.Iterations {
		fmt.Printf("%-11d %12v %10.4f %10.2f %12d\n",
			i+1, it.Wall.Round(time.Microsecond), it.NetworkOverhead(), it.TaskOverheadUS(), it.Tasks)
	}
	fmt.Printf("\ntotal %v — %d parcels in %d messages (%.1f parcels/message), checksum %.4g\n",
		res.Total.Round(time.Millisecond), res.ParcelsSent, res.MessagesSent,
		float64(res.ParcelsSent)/float64(res.MessagesSent), res.Checksum)
}
