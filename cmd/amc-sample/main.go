// Command amc-sample runs the toy workload while periodically sampling
// performance counters, then emits the time series as CSV — the
// reproduction's analog of HPX's --hpx:print-counter-interval, and the
// raw data stream an adaptive controller consumes (the instantaneous
// measurements of the paper's Section IV-D).
//
// Example:
//
//	amc-sample -interval 10ms -parcels 50000 \
//	    -query '/threads{*}/background-overhead@*' \
//	    -query '/coalescing{*}/count/messages@*' > series.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/toy"
	"repro/internal/coalescing"
	"repro/internal/counters"
	"repro/internal/lco"
	"repro/internal/runtime"
)

type queryList []string

func (q *queryList) String() string     { return fmt.Sprint(*q) }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var queries queryList
	flag.Var(&queries, "query", "counter query to sample (repeatable, wildcards allowed)")
	interval := flag.Duration("interval", 20*time.Millisecond, "sampling interval")
	parcels := flag.Int("parcels", 20000, "workload parcels to generate")
	nparcels := flag.Int("nparcels", 16, "coalescing queue length")
	wait := flag.Duration("wait", 2*time.Millisecond, "coalescing wait time")
	flag.Parse()
	if len(queries) == 0 {
		queries = queryList{
			"/threads{*}/background-overhead@*",
			"/threads{*}/idle-rate@*",
			"/coalescing{*}/count/messages@*",
		}
	}

	rt := runtime.New(runtime.Config{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()
	toy.Register(rt)
	if err := rt.EnableCoalescing(toy.Action, coalescing.Params{NParcels: *nparcels, Interval: *wait}); err != nil {
		fatal(err)
	}

	sampler := counters.NewSampler(rt.Counters(), queries, *interval)
	sampler.Start()

	futures := make([]*lco.Future[[]byte], 0, *parcels)
	for i := 0; i < *parcels; i++ {
		f, err := rt.Locality(0).Async(1, toy.Action, nil)
		if err != nil {
			fatal(err)
		}
		futures = append(futures, f)
	}
	if err := lco.WaitAll(futures); err != nil {
		fatal(err)
	}
	sampler.Stop()

	if err := sampler.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sampled %d points at %v intervals\n", len(sampler.Samples()), *interval)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "amc-sample: %v\n", err)
	os.Exit(1)
}
