// Command amc-counters runs a short toy workload and prints performance
// counters matching a query, mirroring HPX's --hpx:print-counter /
// --hpx:list-counters interface that the paper's methodology is built on.
//
// Examples:
//
//	amc-counters -list
//	amc-counters -query '/coalescing{*}/count/parcels@*'
//	amc-counters -query '/threads{locality#1}/background-overhead' -parcels 20000
//	amc-counters -histogram toy/get_cplx
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/toy"
	"repro/internal/coalescing"
	"repro/internal/counters"
	"repro/internal/lco"
	"repro/internal/runtime"
)

func main() {
	list := flag.Bool("list", false, "list all counter names (--hpx:list-counters)")
	query := flag.String("query", "/coalescing{*}/count/parcels@*", "counter query, * wildcards allowed")
	histAction := flag.String("histogram", "", "print the parcel-arrival histogram for this action")
	parcels := flag.Int("parcels", 5000, "workload parcels to generate")
	nparcels := flag.Int("nparcels", 16, "coalescing queue length")
	wait := flag.Duration("wait", 2*time.Millisecond, "coalescing wait time")
	flag.Parse()

	rt := runtime.New(runtime.Config{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()
	toy.Register(rt)
	params := coalescing.Params{NParcels: *nparcels, Interval: *wait}
	if err := rt.EnableCoalescing(toy.Action, params); err != nil {
		fatal(err)
	}

	// Generate traffic so the counters have something to report.
	futures := make([]*lco.Future[[]byte], 0, *parcels)
	for i := 0; i < *parcels; i++ {
		f, err := rt.Locality(0).Async(1, toy.Action, nil)
		if err != nil {
			fatal(err)
		}
		futures = append(futures, f)
	}
	if err := lco.WaitAll(futures); err != nil {
		fatal(err)
	}

	reg := rt.Counters()
	switch {
	case *list:
		for _, name := range reg.Discover() {
			fmt.Println(name)
		}
	case *histAction != "":
		q := fmt.Sprintf("/coalescing{*}/time/parcel-arrival-histogram@%s", *histAction)
		cs, err := reg.Query(q)
		if err != nil {
			fatal(err)
		}
		if len(cs) == 0 {
			fatal(fmt.Errorf("no histogram counters match %q", q))
		}
		for _, c := range cs {
			hc, ok := c.(*counters.HistogramCounter)
			if !ok {
				continue
			}
			fmt.Printf("%s\n%s\n", c.Path(), hc.Histogram())
		}
	default:
		cs, err := reg.Query(*query)
		if err != nil {
			fatal(err)
		}
		if len(cs) == 0 {
			fatal(fmt.Errorf("no counters match %q", *query))
		}
		for _, c := range cs {
			fmt.Printf("%-70s [%s] %g\n", c.Path(), c.Kind(), c.Value())
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "amc-counters: %v\n", err)
	os.Exit(1)
}
