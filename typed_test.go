package amc_test

import (
	"errors"
	"math"
	"testing"
	"time"

	amc "repro"
	"repro/internal/serialization"
)

func newFacadeRuntime(t *testing.T) *amc.Runtime {
	t.Helper()
	rt := amc.NewRuntime(amc.RuntimeConfig{
		Localities:         2,
		WorkersPerLocality: 2,
		CostModel: amc.CostModel{
			SendOverhead: 2 * time.Microsecond,
			Latency:      5 * time.Microsecond,
		},
	})
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestTypedActionRoundTrip(t *testing.T) {
	rt := newFacadeRuntime(t)
	square := amc.NewTypedAction("square", amc.Float64Codec, amc.Float64Codec)
	square.MustRegister(rt, func(_ *amc.Context, x float64) (float64, error) {
		return x * x, nil
	})
	f, err := square.Async(rt.Locality(0), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.GetWithTimeout(5 * time.Second)
	if err != nil || got != 81 {
		t.Errorf("square(9) = %v, %v", got, err)
	}
	if !f.Ready() {
		t.Error("future not ready after Get")
	}
	if square.Name() != "square" {
		t.Error("wrong name")
	}
}

func TestTypedActionComplexPayload(t *testing.T) {
	rt := newFacadeRuntime(t)
	conj := amc.NewTypedAction("conj", amc.Complex128Codec, amc.Complex128Codec)
	conj.MustRegister(rt, func(_ *amc.Context, z complex128) (complex128, error) {
		return complex(real(z), -imag(z)), nil
	})
	f, err := conj.Async(rt.Locality(0), 1, complex(13.3, -23.8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Get()
	if err != nil || got != complex(13.3, 23.8) {
		t.Errorf("conj = %v, %v", got, err)
	}
}

func TestTypedActionSliceAndStringCodecs(t *testing.T) {
	rt := newFacadeRuntime(t)
	sum := amc.NewTypedAction("sum", amc.Complex128SliceCodec, amc.Complex128Codec)
	sum.MustRegister(rt, func(_ *amc.Context, zs []complex128) (complex128, error) {
		var s complex128
		for _, z := range zs {
			s += z
		}
		return s, nil
	})
	f, err := sum.Async(rt.Locality(0), 1, []complex128{1, 2i, complex(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Get()
	if err != nil || got != complex(4, 6) {
		t.Errorf("sum = %v, %v", got, err)
	}

	greet := amc.NewTypedAction("greet2", amc.StringCodec, amc.StringCodec)
	greet.MustRegister(rt, func(_ *amc.Context, name string) (string, error) {
		return "hi " + name, nil
	})
	g, err := greet.Async(rt.Locality(0), 1, "ada")
	if err != nil {
		t.Fatal(err)
	}
	if s, err := g.Get(); err != nil || s != "hi ada" {
		t.Errorf("greet = %q, %v", s, err)
	}
}

func TestTypedActionErrorPropagation(t *testing.T) {
	rt := newFacadeRuntime(t)
	boom := amc.NewTypedAction("boom", amc.Int64Codec, amc.Int64Codec)
	boom.MustRegister(rt, func(*amc.Context, int64) (int64, error) {
		return 0, errors.New("typed failure")
	})
	f, err := boom.Async(rt.Locality(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.GetWithTimeout(5 * time.Second); err == nil || err.Error() != "typed failure" {
		t.Errorf("err = %v", err)
	}
}

func TestTypedApplyAndWaitAll(t *testing.T) {
	rt := newFacadeRuntime(t)
	ping := amc.NewTypedAction("ping3", amc.UnitCodec, amc.UnitCodec)
	hits := make(chan struct{}, 64)
	ping.MustRegister(rt, func(*amc.Context, struct{}) (struct{}, error) {
		hits <- struct{}{}
		return struct{}{}, nil
	})
	if err := ping.Apply(rt.Locality(0), 1, struct{}{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hits:
	case <-time.After(5 * time.Second):
		t.Fatal("apply never executed")
	}
	var futures []*amc.TypedFuture[struct{}]
	for i := 0; i < 10; i++ {
		f, err := ping.Async(rt.Locality(0), 1, struct{}{})
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	if err := amc.WaitAllTyped(futures); err != nil {
		t.Fatal(err)
	}
}

func TestTypedActionWithCoalescing(t *testing.T) {
	rt := newFacadeRuntime(t)
	inc := amc.NewTypedAction("inc", amc.Int64Codec, amc.Int64Codec)
	inc.MustRegister(rt, func(_ *amc.Context, x int64) (int64, error) { return x + 1, nil })
	if err := rt.EnableCoalescing(inc.Name(), amc.CoalescingParams{NParcels: 8, Interval: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var futures []*amc.TypedFuture[int64]
	for i := 0; i < 64; i++ {
		f, err := inc.Async(rt.Locality(0), 1, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	for i, f := range futures {
		got, err := f.GetWithTimeout(5 * time.Second)
		if err != nil || got != int64(i+1) {
			t.Fatalf("inc(%d) = %v, %v", i, got, err)
		}
	}
	if sent := rt.Locality(0).Port().Stats().MessagesSent; sent >= 64 {
		t.Errorf("typed traffic not coalesced: %d messages", sent)
	}
}

func TestCustomCodec(t *testing.T) {
	type point struct{ X, Y float64 }
	pointCodec := amc.CodecOf(
		func(w *serialization.Writer, p point) { w.F64(p.X); w.F64(p.Y) },
		func(r *serialization.Reader) point { return point{X: r.F64(), Y: r.F64()} },
	)
	rt := newFacadeRuntime(t)
	norm := amc.NewTypedAction("norm", pointCodec, amc.Float64Codec)
	norm.MustRegister(rt, func(_ *amc.Context, p point) (float64, error) {
		return math.Hypot(p.X, p.Y), nil
	})
	f, err := norm.Async(rt.Locality(0), 1, point{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := f.Get(); err != nil || got != 5 {
		t.Errorf("norm = %v, %v", got, err)
	}
}

func TestTypedRegisterTwiceFails(t *testing.T) {
	rt := newFacadeRuntime(t)
	a := amc.NewTypedAction("dup2", amc.UnitCodec, amc.UnitCodec)
	if err := a.Register(rt, func(*amc.Context, struct{}) (struct{}, error) { return struct{}{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(rt, func(*amc.Context, struct{}) (struct{}, error) { return struct{}{}, nil }); err == nil {
		t.Error("second register should fail")
	}
}
