package amc

import (
	"fmt"
	"time"

	"repro/internal/lco"
	"repro/internal/runtime"
	"repro/internal/serialization"
)

// Codec serializes values of one type for parcel transport. Codecs for
// the common payload types are provided (Complex128Codec, Float64Codec,
// Int64Codec, StringCodec, BytesCodec, Complex128SliceCodec,
// Float64SliceCodec, UnitCodec); applications compose or implement their
// own for structured arguments.
type Codec[T any] interface {
	// Encode appends v to the writer.
	Encode(w *serialization.Writer, v T)
	// Decode reads a value; errors surface through the reader.
	Decode(r *serialization.Reader) T
}

// codecFuncs adapts a pair of functions to Codec.
type codecFuncs[T any] struct {
	enc func(*serialization.Writer, T)
	dec func(*serialization.Reader) T
}

func (c codecFuncs[T]) Encode(w *serialization.Writer, v T) { c.enc(w, v) }
func (c codecFuncs[T]) Decode(r *serialization.Reader) T    { return c.dec(r) }

// CodecOf builds a Codec from an encode and a decode function.
func CodecOf[T any](enc func(*serialization.Writer, T), dec func(*serialization.Reader) T) Codec[T] {
	return codecFuncs[T]{enc: enc, dec: dec}
}

// Built-in codecs for the wire types the applications use.
var (
	// Complex128Codec carries one complex double — the toy application's
	// payload.
	Complex128Codec = CodecOf(
		func(w *serialization.Writer, v complex128) { w.C128(v) },
		func(r *serialization.Reader) complex128 { return r.C128() },
	)
	// Float64Codec carries one float64.
	Float64Codec = CodecOf(
		func(w *serialization.Writer, v float64) { w.F64(v) },
		func(r *serialization.Reader) float64 { return r.F64() },
	)
	// Int64Codec carries one signed integer as a varint.
	Int64Codec = CodecOf(
		func(w *serialization.Writer, v int64) { w.Varint(v) },
		func(r *serialization.Reader) int64 { return r.Varint() },
	)
	// StringCodec carries one length-prefixed string.
	StringCodec = CodecOf(
		func(w *serialization.Writer, v string) { w.String(v) },
		func(r *serialization.Reader) string { return r.String() },
	)
	// BytesCodec carries one length-prefixed byte slice.
	BytesCodec = CodecOf(
		func(w *serialization.Writer, v []byte) { w.BytesField(v) },
		func(r *serialization.Reader) []byte { return r.BytesField() },
	)
	// Complex128SliceCodec carries a slice of complex doubles — the
	// Parquet rotation payload.
	Complex128SliceCodec = CodecOf(
		func(w *serialization.Writer, v []complex128) { w.C128Slice(v) },
		func(r *serialization.Reader) []complex128 { return r.C128Slice() },
	)
	// Float64SliceCodec carries a slice of float64s.
	Float64SliceCodec = CodecOf(
		func(w *serialization.Writer, v []float64) { w.F64Slice(v) },
		func(r *serialization.Reader) []float64 { return r.F64Slice() },
	)
	// UnitCodec carries nothing, for actions without arguments or
	// results.
	UnitCodec = CodecOf(
		func(*serialization.Writer, struct{}) {},
		func(*serialization.Reader) struct{} { return struct{}{} },
	)
)

// TypedAction is a statically typed view of an action: registration and
// invocation with Go values instead of byte slices. Argument and result
// (de)serialization go through the same archive layer real parcels use,
// so typed invocations are coalesced, counted and measured identically.
type TypedAction[A, R any] struct {
	name   string
	args   Codec[A]
	result Codec[R]
}

// NewTypedAction declares a typed action with the given codecs. Register
// must be called (once) before invocation.
func NewTypedAction[A, R any](name string, args Codec[A], result Codec[R]) *TypedAction[A, R] {
	return &TypedAction[A, R]{name: name, args: args, result: result}
}

// Name returns the action's wire name.
func (a *TypedAction[A, R]) Name() string { return a.name }

// Register installs the typed body on the runtime.
func (a *TypedAction[A, R]) Register(rt *Runtime, fn func(ctx *Context, arg A) (R, error)) error {
	return rt.RegisterAction(a.name, func(ctx *runtime.Context, raw []byte) ([]byte, error) {
		r := serialization.NewReader(raw)
		arg := a.args.Decode(r)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("amc: decoding %s arguments: %w", a.name, err)
		}
		res, err := fn(ctx, arg)
		if err != nil {
			return nil, err
		}
		w := serialization.NewWriter(64)
		a.result.Encode(w, res)
		return w.Bytes(), nil
	})
}

// MustRegister installs the typed body, panicking on error.
func (a *TypedAction[A, R]) MustRegister(rt *Runtime, fn func(ctx *Context, arg A) (R, error)) {
	if err := a.Register(rt, fn); err != nil {
		panic(err)
	}
}

// TypedFuture delivers a typed result.
type TypedFuture[R any] struct {
	inner *lco.Future[[]byte]
	codec Codec[R]
}

// Get blocks for the typed result.
func (f *TypedFuture[R]) Get() (R, error) {
	var zero R
	raw, err := f.inner.Get()
	if err != nil {
		return zero, err
	}
	r := serialization.NewReader(raw)
	v := f.codec.Decode(r)
	if err := r.Err(); err != nil {
		return zero, fmt.Errorf("amc: decoding result: %w", err)
	}
	return v, nil
}

// GetWithTimeout bounds the wait.
func (f *TypedFuture[R]) GetWithTimeout(d time.Duration) (R, error) {
	var zero R
	raw, err := f.inner.GetWithTimeout(d)
	if err != nil {
		return zero, err
	}
	r := serialization.NewReader(raw)
	v := f.codec.Decode(r)
	if err := r.Err(); err != nil {
		return zero, fmt.Errorf("amc: decoding result: %w", err)
	}
	return v, nil
}

// Ready reports whether the result has arrived.
func (f *TypedFuture[R]) Ready() bool { return f.inner.Ready() }

// Async invokes the typed action on the destination locality from src.
func (a *TypedAction[A, R]) Async(src *Locality, dest int, arg A) (*TypedFuture[R], error) {
	w := serialization.NewWriter(64)
	a.args.Encode(w, arg)
	f, err := src.Async(dest, a.name, w.Bytes())
	if err != nil {
		return nil, err
	}
	return &TypedFuture[R]{inner: f, codec: a.result}, nil
}

// Apply invokes the typed action fire-and-forget.
func (a *TypedAction[A, R]) Apply(src *Locality, dest int, arg A) error {
	w := serialization.NewWriter(64)
	a.args.Encode(w, arg)
	return src.Apply(dest, a.name, w.Bytes())
}

// WaitAllTyped waits for every typed future and returns the first error.
func WaitAllTyped[R any](fs []*TypedFuture[R]) error {
	var firstErr error
	for _, f := range fs {
		if _, err := f.Get(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
