#!/usr/bin/env bash
# cluster_smoke.sh — multi-process cluster smoke test.
#
# Builds amc-node, then runs four scenarios over loopback TCP:
#   1. clean:     3 nodes run a stencil graph to completion (exit 0 each)
#   2. fail-fast: node 2 is hard-killed mid-run; survivors must detect it
#                 via gossiped membership and exit with code 3
#   3. recover:   same kill with -recover; survivors re-home the dead
#                 node's partition and exit 0 with the full graph done
#   4. partition-heal: node 2 is fully partitioned for 1.2s with -rejoin;
#                 the cluster convicts it, the partition heals, the node
#                 rebirths and every node converges back before running
#                 the graph to completion (exit 0 each)
#
# Exits non-zero on the first scenario that misbehaves.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"; kill $(jobs -p) 2>/dev/null || true' EXIT
BIN="$WORK/amc-node"
go build -o "$BIN" ./cmd/amc-node

# run_cluster <name> <common flags...> — starts node 0 on an ephemeral
# port, seeds nodes 1 and 2 from its address file, waits for all three,
# and records exit codes in CODES[] and per-node logs in $WORK/<name>.N.log.
run_cluster() {
    local name=$1; shift
    local dir="$WORK/$name"
    mkdir -p "$dir"
    local addr_file="$dir/node0.addr"

    "$BIN" -id 0 -n 3 -bind 127.0.0.1:0 -addr-file "$addr_file" \
        -result "$dir/cluster.json" -join-timeout 30s "$@" ${NODE0_EXTRA:-} \
        >"$dir/node0.log" 2>&1 &
    local pid0=$!
    for _ in $(seq 1 300); do
        [ -s "$addr_file" ] && break
        sleep 0.05
    done
    [ -s "$addr_file" ] || { echo "FAIL($name): node 0 never published its address"; exit 1; }
    local seed="0@$(head -n1 "$addr_file")"

    "$BIN" -id 1 -n 3 -bind 127.0.0.1:0 -seeds "$seed" -join-timeout 30s \
        "$@" ${NODE1_EXTRA:-} >"$dir/node1.log" 2>&1 &
    local pid1=$!
    "$BIN" -id 2 -n 3 -bind 127.0.0.1:0 -seeds "$seed" -join-timeout 30s \
        "$@" ${NODE2_EXTRA:-} >"$dir/node2.log" 2>&1 &
    local pid2=$!

    CODES=()
    for pid in $pid0 $pid1 $pid2; do
        local code=0
        wait "$pid" || code=$?
        CODES+=("$code")
    done
}

expect_code() { # <name> <node> <want>
    local got=${CODES[$2]}
    if [ "$got" != "$3" ]; then
        echo "FAIL($1): node $2 exited $got, want $3"
        sed "s/^/  node$2| /" "$WORK/$1/node$2.log" | tail -20
        exit 1
    fi
}

GRAPH=(-pattern stencil_1d -width 6 -timeout 60s)

echo "== scenario 1: clean 3-node run =="
run_cluster clean "${GRAPH[@]}" -steps 32
expect_code clean 0 0; expect_code clean 1 0; expect_code clean 2 0
grep -q '"completed": true' "$WORK/clean/cluster.json" \
    || { echo "FAIL(clean): result not completed"; cat "$WORK/clean/cluster.json"; exit 1; }
echo "ok: completed, all nodes exit 0"

echo "== scenario 2: kill node 2, fail-fast =="
NODE2_EXTRA="-crash-after 500ms" \
    run_cluster failfast "${GRAPH[@]}" -steps 100000 -iterations 500
expect_code failfast 0 3; expect_code failfast 1 3
for n in 0 1; do
    grep -q 'locality 2 confirmed down' "$WORK/failfast/node$n.log" \
        || { echo "FAIL(failfast): node $n never logged the membership verdict"; exit 1; }
done
echo "ok: survivors detected the crash via gossip and failed fast (exit 3)"

echo "== scenario 3: kill node 2, recover =="
NODE2_EXTRA="-crash-after 500ms" \
    run_cluster recover -pattern stencil_1d -width 12 -steps 8000 \
    -iterations 2000 -recover -timeout 90s
expect_code recover 0 0; expect_code recover 1 0
grep -q '"completed": true' "$WORK/recover/cluster.json" \
    || { echo "FAIL(recover): result not completed"; cat "$WORK/recover/cluster.json"; exit 1; }
echo "ok: survivors re-homed the dead partition and completed (exit 0)"

echo "== scenario 4: partition node 2, heal, rejoin =="
run_cluster partition "${GRAPH[@]}" -steps 32 -rejoin \
    -partition-node 2 -partition-after 300ms -partition-for 1200ms -partition-mode full
expect_code partition 0 0; expect_code partition 1 0; expect_code partition 2 0
grep -q '"completed": true' "$WORK/partition/cluster.json" \
    || { echo "FAIL(partition): result not completed"; cat "$WORK/partition/cluster.json"; exit 1; }
for n in 0 1 2; do
    grep -q 'rejoin converged' "$WORK/partition/node$n.log" \
        || { echo "FAIL(partition): node $n never logged rejoin convergence"; exit 1; }
done
grep -q '"rebirths": [1-9]' "$WORK/partition/cluster.json" \
    || { echo "FAIL(partition): no rebirth recorded — the outage never convicted anyone"; exit 1; }
echo "ok: conviction, heal, rebirth, convergence, full graph (exit 0)"

echo "cluster smoke: all scenarios passed"
