package amc_test

// One benchmark per table/figure of the paper's evaluation. Each bench
// runs the corresponding experiment at quick scale (the same code paths
// as cmd/amc-repro, which runs them at the default/full scales) and
// reports the figure's headline quantity as a custom metric alongside the
// usual ns/op:
//
//	BenchmarkTimerAccuracy        — §II-B flush-timer firing error (µs)
//	BenchmarkFig4ToyCorrelation   — Fig. 4 Pearson r (overhead vs time)
//	BenchmarkFig5ToyPhaseTimes    — Fig. 5 speedup of max vs no coalescing
//	BenchmarkFig6ParquetIterations— Fig. 6 best parcels-per-message
//	BenchmarkFig7ParquetCorrelation — Fig. 7 Pearson r
//	BenchmarkFig8ParquetSweep     — Fig. 8 worst/best ratio over the grid
//	BenchmarkFig9Instantaneous    — Fig. 9 overhead swing across phases
//	BenchmarkRSDStability         — §IV-C relative standard deviation (%)
//	BenchmarkAdaptiveTuner        — extension: tuned vs static-worst ratio
//	BenchmarkCoalescingStrategies — ablation: message reduction factor
//
// Micro-benchmarks for the substrates (serialization, coalescer puts,
// counter updates, timer churn, fabric sends) follow below; they isolate
// the per-message costs the macro experiments aggregate.

import (
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/coalescing"
	"repro/internal/counters"
	"repro/internal/experiment"
	"repro/internal/network"
	"repro/internal/parcel"
	"repro/internal/serialization"
	"repro/internal/timer"
)

func BenchmarkTimerAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.TimerAccuracy(100)
		b.ReportMetric(float64(res.MeanError())/float64(time.Microsecond), "µs-mean-error")
	}
}

func BenchmarkFig4ToyCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig4(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pearson, "pearson-r")
	}
}

func BenchmarkFig5ToyPhaseTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig5(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		first := res.Rows[0].Cumulative
		last := res.Rows[len(res.Rows)-1].Cumulative
		speedup := float64(first[len(first)-1]) / float64(last[len(last)-1])
		b.ReportMetric(speedup, "speedup-max-vs-none")
	}
}

func BenchmarkFig6ParquetIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig6(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BestNParcels()), "best-nparcels")
	}
}

func BenchmarkFig7ParquetCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.ParquetGrid(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pearson, "pearson-r")
	}
}

func BenchmarkFig8ParquetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.ParquetGrid(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		var worst, bestT time.Duration
		bestT = 1 << 62
		for _, p := range res.Points {
			if p.AvgIteration > worst {
				worst = p.AvgIteration
			}
			if p.AvgIteration < bestT {
				bestT = p.AvgIteration
			}
		}
		b.ReportMetric(float64(worst)/float64(bestT), "worst/best")
	}
}

func BenchmarkFig9Instantaneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig9(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		run := res.Runs[1] // starts suboptimal, improves
		swing := run.Overheads[0] - run.Overheads[len(run.Overheads)-1]
		b.ReportMetric(swing, "overhead-swing")
	}
}

func BenchmarkRSDStability(b *testing.B) {
	s := experiment.QuickScale()
	s.RSDRuns = 4
	for i := 0; i < b.N; i++ {
		res, err := experiment.RSD(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RSD, "rsd-%")
	}
}

func BenchmarkAdaptiveTuner(b *testing.B) {
	s := experiment.QuickScale()
	s.ToyParcelsPerPhase = 2500
	s.ToyPhases = 3
	for i := 0; i < b.N; i++ {
		res, err := experiment.Adaptive(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.StaticWorst)/float64(res.Tuned), "worst/tuned")
	}
}

func BenchmarkCoalescingStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Strategies(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		// Message-reduction factor of the paper's scheme vs none.
		b.ReportMetric(float64(rows[0].Messages)/float64(rows[1].Messages), "msg-reduction")
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkSerializationParcelBundle(b *testing.B) {
	parcels := make([]*parcel.Parcel, 16)
	for i := range parcels {
		parcels[i] = &parcel.Parcel{
			Dest:         agas.MakeGID(1, uint64(i+1)),
			Action:       "bench/action",
			Args:         make([]byte, 64),
			Continuation: agas.MakeGID(0, uint64(i+1)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := parcel.EncodeBundle(parcels)
		if _, err := parcel.DecodeBundle(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializationComplexSlice(b *testing.B) {
	vs := make([]complex128, 512)
	for i := range vs {
		vs[i] = complex(float64(i), -float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := serialization.NewWriter(512 * 16)
		w.C128Slice(vs)
		r := serialization.NewReader(w.Bytes())
		if got := r.C128Slice(); len(got) != 512 {
			b.Fatal("bad round trip")
		}
	}
}

type nullEnqueuer struct{}

func (nullEnqueuer) EnqueueMessage(int, []*parcel.Parcel) {}

func BenchmarkCoalescerPut(b *testing.B) {
	svc := timer.NewService(timer.ServiceOptions{})
	defer svc.Stop()
	c := coalescing.New(nullEnqueuer{}, coalescing.Params{NParcels: 64, Interval: time.Second},
		coalescing.Options{TimerService: svc, Action: "bench"})
	defer c.Close()
	p := &parcel.Parcel{Dest: agas.MakeGID(1, 1), DestLocality: 1, Action: "bench"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(p)
	}
}

func BenchmarkCounterUpdates(b *testing.B) {
	raw := counters.NewRaw(counters.MustParse("/bench/raw"))
	avg := counters.NewAverage(counters.MustParse("/bench/avg"))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			raw.Inc()
			avg.Record(1.5)
		}
	})
}

func BenchmarkTimerStartStop(b *testing.B) {
	svc := timer.NewService(timer.ServiceOptions{})
	defer svc.Stop()
	t := svc.NewTimer(func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Start(time.Second)
		t.Stop()
	}
}

func BenchmarkSimFabricSend(b *testing.B) {
	f := network.NewSimFabric(2, network.CostModel{})
	defer f.Close()
	f.SetHandler(1, func(int, []byte) {})
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Send(0, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseBypassAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.SparseBypass(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WithoutBypass)/float64(res.WithBypass), "nobypass/bypass")
	}
}

func BenchmarkStencilExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Stencil(experiment.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup(), "finest-chunk-speedup")
	}
}
