package bench

import (
	"testing"
	"time"

	"repro/internal/coalescing"
	"repro/internal/network"
	"repro/internal/runtime"
	"repro/internal/taskbench"
)

// TaskbenchSweepConfig returns the harness configuration behind
// BENCH_taskbench.json: all eight dependence patterns across a 3×3
// (NParcels × Interval) coalescing grid on two simulated localities.
// quick shrinks the workload to a CI-smoke size (tiny width/steps, one
// repeat) that still exercises every pattern and every grid cell.
func TaskbenchSweepConfig(quick bool) taskbench.SweepConfig {
	cfg := taskbench.SweepConfig{
		Localities:         2,
		WorkersPerLocality: 2,
		Graph: taskbench.Graph{
			Width:       32,
			Steps:       16,
			Iterations:  64,
			OutputBytes: 32,
			Seed:        1,
		},
		NParcels:  []int{1, 8, 64},
		Intervals: []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond},
		Repeat:    5,
	}
	if quick {
		cfg.Graph.Width = 6
		cfg.Graph.Steps = 4
		cfg.Graph.Iterations = 8
		cfg.Repeat = 1
	}
	return cfg
}

// TaskbenchPhaseConfig returns the adaptive phase-demo configuration:
// a stencil → fft → random pattern sequence on one runtime under a live
// OverheadTuner, demonstrating re-convergence across phase changes.
func TaskbenchPhaseConfig(quick bool) taskbench.PhaseDemoConfig {
	cfg := taskbench.PhaseDemoConfig{
		Localities:         2,
		WorkersPerLocality: 2,
		Graph: taskbench.Graph{
			Width:       32,
			Steps:       16,
			Iterations:  64,
			OutputBytes: 32,
		},
		Phases:       []taskbench.Pattern{taskbench.Stencil1D, taskbench.FFT, taskbench.Random},
		RunsPerPhase: 10,
	}
	if quick {
		cfg.Graph.Width = 6
		cfg.Graph.Steps = 4
		cfg.Graph.Iterations = 8
		cfg.RunsPerPhase = 2
	}
	return cfg
}

// TaskbenchGraph measures end-to-end execution of one small stencil
// graph per iteration on a shared runtime: the task-graph analog of the
// other suites' ns/op numbers, with tasks/sec reported. It doubles as
// the `go test -bench` smoke for the taskbench driver.
func TaskbenchGraph(b *testing.B, pattern taskbench.Pattern) {
	rt := runtime.New(runtime.Config{
		Localities:         2,
		WorkersPerLocality: 2,
		CostModel: network.CostModel{
			SendOverhead: 5 * time.Microsecond,
			RecvOverhead: 3 * time.Microsecond,
			Latency:      5 * time.Microsecond,
		},
	})
	defer rt.Shutdown()
	tb, err := taskbench.New(rt, taskbench.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.EnableCoalescing(tb.ActionName(), coalescing.Params{
		NParcels: 16, Interval: 200 * time.Microsecond,
	}); err != nil {
		b.Fatal(err)
	}
	g := taskbench.Graph{Width: 8, Steps: 6, Pattern: pattern, Iterations: 16, OutputBytes: 16}
	var tasks int64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := tb.Run(g)
		if err != nil {
			b.Fatal(err)
		}
		tasks += res.Tasks
	}
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(tasks)/sec, "tasks/sec")
	}
}

// TaskbenchBenchName names one graph benchmark by its pattern.
func TaskbenchBenchName(pattern taskbench.Pattern) string {
	return "pattern=" + string(pattern)
}
