package bench

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coalescing"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/reliable"
	"repro/internal/runtime"
)

// ReliableChaos measures end-to-end goodput of a coalescing toy app over
// the reliable-delivery layer while the inner wire drops lossPct percent
// of frames (with proportional reorder and duplication). Each benchmark
// iteration sends one batch of parcels and waits until every one has been
// executed exactly once on the remote locality, so ns/op is the full
// delivery latency including retransmission stalls. Reported metrics:
//
//	parcels/sec       goodput (delivered parcels per wall second)
//	network-overhead  Eq. 4 over the measured interval
//	retransmits/op    reliability-layer retransmissions per batch
//	dups/op           duplicate frames suppressed per batch
func ReliableChaos(b *testing.B, lossPct float64) {
	const batch = 500
	inner := network.NewSimFabric(2, network.CostModel{Latency: 5 * time.Microsecond})
	var plan *network.FaultPlan
	if lossPct > 0 {
		plan = network.NewFaultPlan(1)
		plan.SetDefault(network.LinkFaults{
			DropRate:      lossPct / 100,
			ReorderRate:   lossPct / 200,
			DuplicateRate: lossPct / 500,
		})
		inner.SetFaultHook(plan.Hook())
	}
	rel := reliable.New(inner, reliable.Config{
		// The host timer granularity is ~1ms, so a smaller RTO would
		// mostly measure spurious retransmission.
		RTO:      5 * time.Millisecond,
		AckDelay: 500 * time.Microsecond,
		Tick:     250 * time.Microsecond,
	})
	rt := runtime.New(runtime.Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Fabric:             rel,
	})
	defer func() {
		rt.Shutdown()
		rel.Close()
	}()

	var delivered atomic.Int64
	rt.MustRegisterAction("bench/reliable-echo", func(ctx *runtime.Context, args []byte) ([]byte, error) {
		delivered.Add(1)
		return nil, nil
	})
	if err := rt.EnableCoalescing("bench/reliable-echo", coalescing.Params{
		NParcels: 16,
		Interval: 200 * time.Microsecond,
	}); err != nil {
		b.Fatal(err)
	}

	loc0 := rt.Locality(0)
	args := make([]byte, 32)
	before := metrics.Snapshot(rt)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		target := delivered.Load() + batch
		for j := 0; j < batch; j++ {
			binary.LittleEndian.PutUint32(args, uint32(j))
			if err := loc0.Apply(1, "bench/reliable-echo", args); err != nil {
				b.Fatal(err)
			}
		}
		for delivered.Load() < target {
			time.Sleep(100 * time.Microsecond)
		}
	}
	b.StopTimer()
	elapsed := time.Since(start)
	after := metrics.Snapshot(rt)

	if got, want := delivered.Load(), int64(batch*b.N); got != want {
		b.Fatalf("delivered %d parcels, want exactly %d", got, want)
	}
	st := rel.ReliabilityStats()
	b.ReportMetric(float64(batch*b.N)/elapsed.Seconds(), "parcels/sec")
	bg := after.BackgroundWork - before.BackgroundWork
	busy := (after.TaskDuration - before.TaskDuration) + bg
	if busy > 0 {
		b.ReportMetric(float64(bg)/float64(busy), "network-overhead")
	}
	b.ReportMetric(float64(st.Retransmits)/float64(b.N), "retransmits/op")
	b.ReportMetric(float64(st.DuplicatesSuppressed)/float64(b.N), "dups/op")
}

// ReliableBenchName names one chaos measurement by its loss percentage.
func ReliableBenchName(lossPct float64) string {
	return fmt.Sprintf("loss=%g%%", lossPct)
}

// ReliableLinkDownDetection measures how quickly a fully partitioned link
// is declared down: each iteration builds a fresh reliable fabric over a
// partitioned SimFabric, sends one frame, and waits for the retry budget
// to exhaust. ns/op is therefore the failure-detection latency for the
// configured budget (4 retries from a 500µs RTO).
func ReliableLinkDownDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inner := network.NewSimFabric(2, network.CostModel{})
		plan := network.NewFaultPlan(int64(i + 1))
		plan.SetLink(0, 1, network.LinkFaults{Partition: true})
		inner.SetFaultHook(plan.Hook())
		rel := reliable.New(inner, reliable.Config{
			RTO:        500 * time.Microsecond,
			RTOMax:     2 * time.Millisecond,
			MaxRetries: 4,
			Tick:       100 * time.Microsecond,
		})
		rel.SetHandler(0, func(_ int, p []byte) { network.PutPayload(p) })
		rel.SetHandler(1, func(_ int, p []byte) { network.PutPayload(p) })
		if err := rel.Send(0, 1, network.GetPayload(64)); err != nil {
			b.Fatal(err)
		}
		for !rel.LinkDown(0, 1) {
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		rel.Close()
		b.StartTimer()
	}
}
