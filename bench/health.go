package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/health"
	"repro/internal/network"
	"repro/internal/runtime"
	"repro/internal/taskbench"
)

// HealthConfig shapes the failure-detection chaos suite behind
// BENCH_health.json: phi-accrual detection latency, a no-crash
// false-positive soak, and the survive-crash workload runs.
type HealthConfig struct {
	Localities         int
	WorkersPerLocality int
	// Detector is the phi-accrual configuration used for the detection
	// trials and the survive-crash runs (fast horizons in quick mode so
	// CI detects in milliseconds).
	Detector health.Config
	// SoakDetector is the configuration under test in the false-positive
	// soak. This stays at production defaults even in quick mode: the
	// soak's claim — sustained workload traffic, zero suspicions — is
	// about the shipped parameters, not the accelerated test ones.
	SoakDetector health.Config
	// DetectionTrials is how many crash-inject/measure cycles feed the
	// latency statistics (each on a fresh runtime).
	DetectionTrials int
	// SoakDuration is how long the no-crash soak runs workload traffic
	// while asserting the detector stays silent.
	SoakDuration time.Duration
	// Graph is the survive-crash workload; CrashAtStep the injection
	// point within it.
	Graph       taskbench.Graph
	CrashAtStep int
	// RunTimeout bounds each taskbench execution.
	RunTimeout time.Duration
}

// HealthSuiteConfig returns the full (30s soak) or quick (CI smoke, 3s
// soak, millisecond detector horizons) configuration.
func HealthSuiteConfig(quick bool) HealthConfig {
	cfg := HealthConfig{
		Localities:         3,
		WorkersPerLocality: 2,
		Detector:           health.Config{Enabled: true}, // production defaults
		SoakDetector:       health.Config{Enabled: true}, // production defaults
		DetectionTrials:    5,
		SoakDuration:       30 * time.Second,
		Graph: taskbench.Graph{
			Width: 24, Steps: 12, Pattern: taskbench.Stencil1D,
			Iterations: 32, OutputBytes: 16,
		},
		CrashAtStep: 4,
		RunTimeout:  60 * time.Second,
	}
	if quick {
		cfg.Detector = health.Config{
			Enabled:           true,
			HeartbeatInterval: 2 * time.Millisecond,
			Tick:              500 * time.Microsecond,
			PhiThreshold:      8,
			Grace:             20 * time.Millisecond,
		}
		cfg.DetectionTrials = 3
		cfg.SoakDuration = 3 * time.Second
		cfg.Graph.Width = 12
		cfg.Graph.Steps = 6
		cfg.Graph.Iterations = 16
		cfg.CrashAtStep = 2
		cfg.RunTimeout = 30 * time.Second
	}
	return cfg
}

// HealthReport is the measurement set the health suite produces.
type HealthReport struct {
	Localities int `json:"localities"`
	// Detection latency (crash injection to LocalityDead on the
	// survivors), over DetectionTrials fresh runtimes.
	DetectionTrials int     `json:"detection_trials"`
	DetectionMinMS  float64 `json:"detection_min_ms"`
	DetectionMeanMS float64 `json:"detection_mean_ms"`
	DetectionMaxMS  float64 `json:"detection_max_ms"`
	// False-positive soak: workload traffic, zero crashes. Suspicions
	// must stay zero.
	SoakSeconds    float64 `json:"soak_seconds"`
	SoakRuns       int     `json:"soak_runs"`
	SoakSuspicions int64   `json:"soak_suspicions"`
	// Survive-crash workload: with the retry/recovery policy the run
	// completes on the survivors; without it, it fails cleanly with
	// ErrLocalityDown — measured as time-to-clean-failure.
	SurviveWallMS float64 `json:"survive_wall_ms"`
	SurviveTasks  int64   `json:"survive_tasks"`
	FailFastMS    float64 `json:"fail_fast_ms"`
}

type healthRig struct {
	rt   *runtime.Runtime
	fab  *network.SimFabric
	plan *network.FaultPlan
}

func newHealthRig(cfg HealthConfig, det health.Config) *healthRig {
	fab := network.NewSimFabric(cfg.Localities, network.CostModel{
		SendOverhead: time.Microsecond, Latency: 2 * time.Microsecond,
	})
	plan := network.NewFaultPlan(1)
	fab.SetFaultHook(plan.Hook())
	rt := runtime.New(runtime.Config{
		Localities:         cfg.Localities,
		WorkersPerLocality: cfg.WorkersPerLocality,
		Fabric:             fab,
		Health:             det,
	})
	return &healthRig{rt: rt, fab: fab, plan: plan}
}

func (r *healthRig) close() {
	r.rt.Shutdown()
	r.fab.Close()
}

// RunHealth executes the chaos suite and returns its report. Partial
// progress is returned alongside the error so the caller can emit a
// partial report.
func RunHealth(cfg HealthConfig) (HealthReport, error) {
	rep := HealthReport{Localities: cfg.Localities, DetectionTrials: cfg.DetectionTrials}

	// 1. Detection latency: crash a locality on a fresh runtime and
	// measure injection-to-declaration on the survivors.
	var sum float64
	for trial := 0; trial < cfg.DetectionTrials; trial++ {
		lat, err := detectionTrial(cfg)
		if err != nil {
			return rep, fmt.Errorf("detection trial %d: %w", trial, err)
		}
		ms := float64(lat) / 1e6
		sum += ms
		if trial == 0 || ms < rep.DetectionMinMS {
			rep.DetectionMinMS = ms
		}
		if ms > rep.DetectionMaxMS {
			rep.DetectionMaxMS = ms
		}
	}
	if cfg.DetectionTrials > 0 {
		rep.DetectionMeanMS = sum / float64(cfg.DetectionTrials)
	}

	// 2. False-positive soak: workload traffic, no crash, detector must
	// stay silent for the whole window.
	runs, suspicions, err := soak(cfg)
	rep.SoakSeconds = cfg.SoakDuration.Seconds()
	rep.SoakRuns = runs
	rep.SoakSuspicions = suspicions
	if err != nil {
		return rep, fmt.Errorf("soak: %w", err)
	}

	// 3. Survive-crash with recovery: the run must complete on the
	// survivors with every task executed.
	wall, tasks, err := surviveCrash(cfg, true)
	if err != nil {
		return rep, fmt.Errorf("survive-crash (recover): %w", err)
	}
	rep.SurviveWallMS = float64(wall) / 1e6
	rep.SurviveTasks = tasks

	// 4. Without recovery the same crash must fail cleanly (never hang):
	// the error wraps ErrLocalityDown and arrives within the run budget.
	wall, _, err = surviveCrash(cfg, false)
	if err == nil {
		return rep, errors.New("fail-fast run completed despite crash with no recovery policy")
	}
	if !errors.Is(err, network.ErrLocalityDown) {
		return rep, fmt.Errorf("fail-fast run: %w (want ErrLocalityDown, a timeout means the run hung)", err)
	}
	rep.FailFastMS = float64(wall) / 1e6
	return rep, nil
}

func detectionTrial(cfg HealthConfig) (time.Duration, error) {
	rig := newHealthRig(cfg, cfg.Detector)
	defer rig.close()
	victim := cfg.Localities - 1

	// Let the detector build its inter-arrival window first.
	hi := cfg.Detector.WithDefaults().HeartbeatInterval
	time.Sleep(10 * hi)

	rig.plan.Crash(victim)
	rig.rt.CrashLocality(victim)
	start := time.Now()
	deadline := start.Add(cfg.RunTimeout)
	for time.Now().Before(deadline) {
		if rig.rt.LocalityDead(victim) {
			return time.Since(start), nil
		}
		time.Sleep(hi / 10)
	}
	return 0, fmt.Errorf("locality %d not declared dead within %v (phi from 0: %.2f)",
		victim, cfg.RunTimeout, rig.rt.Monitor(0).Phi(victim))
}

func soak(cfg HealthConfig) (runs int, suspicions int64, err error) {
	rig := newHealthRig(cfg, cfg.SoakDetector)
	defer rig.close()
	b, err := taskbench.New(rig.rt, taskbench.Options{Timeout: cfg.RunTimeout})
	if err != nil {
		return 0, 0, err
	}
	g := cfg.Graph
	deadline := time.Now().Add(cfg.SoakDuration)
	for time.Now().Before(deadline) {
		if _, err := b.Run(g); err != nil {
			return runs, 0, err
		}
		runs++
	}
	for i := 0; i < cfg.Localities; i++ {
		suspicions += rig.rt.Monitor(i).Suspicions()
		if rig.rt.LocalityDead(i) {
			return runs, suspicions, fmt.Errorf("false positive: locality %d declared dead with no crash", i)
		}
	}
	if suspicions != 0 {
		return runs, suspicions, fmt.Errorf("false positives: %d suspicions during idle soak", suspicions)
	}
	return runs, suspicions, nil
}

func surviveCrash(cfg HealthConfig, recover bool) (wall time.Duration, tasks int64, err error) {
	rig := newHealthRig(cfg, cfg.Detector)
	defer rig.close()
	b, err := taskbench.New(rig.rt, taskbench.Options{Timeout: cfg.RunTimeout})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	res, err := b.RunWithCrash(cfg.Graph, taskbench.CrashSpec{
		Locality: cfg.Localities - 1,
		AtStep:   cfg.CrashAtStep,
		Plan:     rig.plan,
		Recover:  recover,
	})
	wall = time.Since(start)
	if err != nil {
		return wall, 0, err
	}
	if want := int64(res.Graph.TotalTasks()); res.Tasks != want {
		return wall, res.Tasks, fmt.Errorf("executed %d tasks, want exactly %d", res.Tasks, want)
	}
	return wall, res.Tasks, nil
}
