package bench

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/coalescing"
	"repro/internal/network"
	"repro/internal/runtime"
)

// End-to-end throughput suite.
//
// The micro-benchmarks above isolate single pipeline stages; this suite
// measures what the receive-path work actually buys: delivered active
// messages per second per core through the full stack — Apply → port →
// (coalescing) → fabric → batched rx → decode → scheduler task — on both
// fabrics, at several parcel sizes and coalescing settings, with the
// zero-allocation borrowing decode A/B'd against the copying baseline
// (runtime.Config.CopyDecode). The simulated fabric runs a light cost
// model (wire latency only, no synthetic per-message CPU) so the
// software path under measurement is the runtime's own, not the model's.

// E2EConfig sizes the end-to-end sweep.
type E2EConfig struct {
	// Quick shrinks the sweep to CI-smoke size: one parcel size, one
	// coalescing setting, fewer parcels per point.
	Quick bool
	// Verbose echoes each point to the given printf-style function.
	Logf func(format string, args ...any)
}

// E2EPoint is one measured configuration.
type E2EPoint struct {
	Fabric    string  `json:"fabric"`            // "sim" | "tcp"
	ArgsBytes int     `json:"args_bytes"`        // argument-pack size per parcel
	CoalesceN int     `json:"coalesce_nparcels"` // coalescing NParcels; 1 = disabled
	Decode    string  `json:"decode"`            // "borrowed" | "copy"
	Parcels   int64   `json:"parcels"`           // active messages delivered
	WireMsgs  uint64  `json:"wire_messages"`     // frames the fabric delivered
	WallMS    float64 `json:"wall_ms"`
	// ParcelsPerSec is end-to-end delivered active messages per second;
	// PerCore divides by the scheduler workers doing the delivery work
	// (localities × workers), the suite's headline unit.
	ParcelsPerSec        float64 `json:"parcels_per_sec"`
	ParcelsPerSecPerCore float64 `json:"parcels_per_sec_per_core"`
}

// E2EImprovement is the borrowed-vs-copy ratio for one (fabric, size,
// coalescing) cell of the sweep.
type E2EImprovement struct {
	Fabric          string  `json:"fabric"`
	ArgsBytes       int     `json:"args_bytes"`
	CoalesceN       int     `json:"coalesce_nparcels"`
	BorrowedPerCore float64 `json:"borrowed_parcels_per_sec_per_core"`
	CopyPerCore     float64 `json:"copy_parcels_per_sec_per_core"`
	// Improvement is borrowed/copy throughput; >1 means the borrowing
	// decode delivered more messages per second per core.
	Improvement float64 `json:"improvement"`
}

// E2EResult is the full sweep outcome.
type E2EResult struct {
	Localities   int              `json:"localities"`
	Workers      int              `json:"workers_per_locality"`
	Points       []E2EPoint       `json:"points"`
	Improvements []E2EImprovement `json:"improvements"`
	// GeomeanImprovement aggregates the per-cell borrowed/copy ratios.
	GeomeanImprovement float64 `json:"geomean_improvement"`
}

const (
	e2eLocalities = 2
	e2eWorkers    = 2
	e2eAction     = "bench/e2e-sink"
)

// RunE2E executes the end-to-end sweep.
func RunE2E(cfg E2EConfig) (E2EResult, error) {
	fabrics := []string{"sim", "tcp"}
	sizes := []int{16, 256, 4096}
	coalesce := []int{1, 16}
	perPoint := 20000
	timeout := 120 * time.Second
	if cfg.Quick {
		sizes = []int{64}
		coalesce = []int{16}
		perPoint = 2000
		timeout = 30 * time.Second
	}

	res := E2EResult{Localities: e2eLocalities, Workers: e2eWorkers}
	ratios := make([]float64, 0, len(fabrics)*len(sizes)*len(coalesce))
	for _, fab := range fabrics {
		for _, size := range sizes {
			for _, cn := range coalesce {
				cell := E2EImprovement{Fabric: fab, ArgsBytes: size, CoalesceN: cn}
				for _, copyDecode := range []bool{false, true} {
					p, err := runE2EPoint(fab, size, cn, copyDecode, perPoint, timeout)
					if err != nil {
						return res, err
					}
					res.Points = append(res.Points, p)
					if copyDecode {
						cell.CopyPerCore = p.ParcelsPerSecPerCore
					} else {
						cell.BorrowedPerCore = p.ParcelsPerSecPerCore
					}
					if cfg.Logf != nil {
						cfg.Logf("e2e %-3s args=%-4d coalesce=%-2d decode=%-8s %10.0f parcels/s (%8.0f /core)",
							p.Fabric, p.ArgsBytes, p.CoalesceN, p.Decode, p.ParcelsPerSec, p.ParcelsPerSecPerCore)
					}
				}
				if cell.CopyPerCore > 0 {
					cell.Improvement = cell.BorrowedPerCore / cell.CopyPerCore
					ratios = append(ratios, cell.Improvement)
				}
				res.Improvements = append(res.Improvements, cell)
			}
		}
	}
	if len(ratios) > 0 {
		sum := 0.0
		for _, r := range ratios {
			sum += math.Log(r)
		}
		res.GeomeanImprovement = math.Exp(sum / float64(len(ratios)))
	}
	return res, nil
}

// runE2EPoint measures one configuration: total parcels sent from
// locality 0 to a counting sink action on locality 1, wall-clocked from
// first Apply to last delivery.
func runE2EPoint(fabricKind string, argsBytes, coalesceN int, copyDecode bool, total int, timeout time.Duration) (E2EPoint, error) {
	decode := "borrowed"
	if copyDecode {
		decode = "copy"
	}
	pt := E2EPoint{Fabric: fabricKind, ArgsBytes: argsBytes, CoalesceN: coalesceN, Decode: decode}

	var fab network.Fabric
	switch fabricKind {
	case "sim":
		fab = network.NewSimFabric(e2eLocalities, network.CostModel{Latency: 5 * time.Microsecond})
	case "tcp":
		tf, err := network.NewTCPFabric(e2eLocalities)
		if err != nil {
			return pt, fmt.Errorf("e2e: tcp fabric: %w", err)
		}
		fab = tf
	default:
		return pt, fmt.Errorf("e2e: unknown fabric %q", fabricKind)
	}
	rt := runtime.New(runtime.Config{
		Localities:         e2eLocalities,
		WorkersPerLocality: e2eWorkers,
		Fabric:             fab,
		CopyDecode:         copyDecode,
	})
	defer func() {
		rt.Shutdown()
		_ = fab.Close()
	}()

	var delivered atomic.Int64
	rt.MustRegisterAction(e2eAction, func(ctx *runtime.Context, args []byte) ([]byte, error) {
		delivered.Add(1)
		return nil, nil
	})
	if coalesceN > 1 {
		if err := rt.EnableCoalescing(e2eAction, coalescing.Params{
			NParcels: coalesceN,
			Interval: 200 * time.Microsecond,
		}); err != nil {
			return pt, err
		}
	}

	args := make([]byte, argsBytes)
	for i := range args {
		args[i] = byte(i)
	}
	loc0 := rt.Locality(0)
	before := fab.Stats()
	start := time.Now()
	for i := 0; i < total; i++ {
		if err := loc0.Apply(1, e2eAction, args); err != nil {
			return pt, fmt.Errorf("e2e: apply %d: %w", i, err)
		}
	}
	rt.FlushAllCoalescers()
	deadline := start.Add(timeout)
	for delivered.Load() < int64(total) {
		if time.Now().After(deadline) {
			return pt, fmt.Errorf("e2e: %s/%dB/coalesce=%d/%s stalled at %d/%d parcels",
				fabricKind, argsBytes, coalesceN, decode, delivered.Load(), total)
		}
		time.Sleep(100 * time.Microsecond)
	}
	wall := time.Since(start)
	after := fab.Stats()

	pt.Parcels = delivered.Load()
	pt.WireMsgs = after.MessagesReceived - before.MessagesReceived
	pt.WallMS = float64(wall) / float64(time.Millisecond)
	secs := wall.Seconds()
	if secs > 0 {
		pt.ParcelsPerSec = float64(pt.Parcels) / secs
		pt.ParcelsPerSecPerCore = pt.ParcelsPerSec / float64(e2eLocalities*e2eWorkers)
	}
	return pt, nil
}
