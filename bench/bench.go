// Package bench holds the micro-benchmark suite for the parcel
// transmission pipeline. The benchmark bodies live here as exported
// functions so they can be driven two ways: by `go test -bench` through
// the thin wrappers in bench_test.go, and by cmd/amc-bench through
// testing.Benchmark to produce the committed BENCH_parcel.json.
//
// The suite covers the three layers the zero-allocation work touched:
// bundle encode/decode (serialization), port enqueue/send (the sharded
// outbound queue plus pooled payload buffers), and coalescer Put under
// increasing sender concurrency (the striped destination queues). The
// encode and port-send benchmarks are the ones the pipeline promises
// 0 allocs/op on; the coalescer benchmarks are paired with a
// single-mutex baseline so the striping speedup is measured, not
// assumed.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/coalescing"
	"repro/internal/counters"
	"repro/internal/network"
	"repro/internal/parcel"
	"repro/internal/stats"
	"repro/internal/timer"
)

// nullFabric is a Fabric that accepts every send and immediately
// recycles the payload, isolating the port's own encode/enqueue cost
// from transport effects. It never delivers, so receive-side work is
// zero.
type nullFabric struct {
	n     int
	sent  int
	bytes int
}

func (f *nullFabric) Send(src, dst int, payload []byte) error {
	f.sent++
	f.bytes += len(payload)
	network.PutPayload(payload)
	return nil
}

func (f *nullFabric) SetHandler(dst int, h network.Handler) {}
func (f *nullFabric) Localities() int                       { return f.n }
func (f *nullFabric) Model() network.CostModel              { return network.CostModel{} }
func (f *nullFabric) Stats() network.Stats {
	return network.Stats{MessagesSent: uint64(f.sent), BytesSent: uint64(f.bytes)}
}
func (f *nullFabric) Close() error { return nil }

// makeParcels builds n distinct parcels with argsLen-byte argument packs
// for destination dst.
func makeParcels(n, dst, argsLen int) []*parcel.Parcel {
	ps := make([]*parcel.Parcel, n)
	args := make([]byte, argsLen)
	for i := range args {
		args[i] = byte(i)
	}
	for i := range ps {
		ps[i] = &parcel.Parcel{
			Dest:         agas.GID(uint64(dst)<<32 | uint64(i)),
			DestLocality: dst,
			Action:       "bench-action",
			Args:         args,
			Source:       0,
		}
	}
	return ps
}

// EncodeBundle measures appending a 16-parcel bundle into a reused
// buffer: the port's transmit-path encoding. Steady state must be
// 0 allocs/op.
func EncodeBundle(b *testing.B) {
	ps := makeParcels(16, 1, 64)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = parcel.AppendBundle(buf[:0], ps)
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
	b.SetBytes(int64(len(buf)))
}

// DecodeBundle measures the port's actual receive decoding: a pooled
// wire buffer is borrow-decoded into pooled parcels whose fields alias
// it, then released back (parcels, batch slice and payload all recycle).
// The per-iteration GetPayload+copy stands in for the fabric filling a
// pooled receive buffer. Steady state must be 0 allocs/op — the receive
// mirror of EncodeBundle/PortSend.
func DecodeBundle(b *testing.B) {
	wire := parcel.EncodeBundle(makeParcels(16, 1, 64))
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := network.GetPayload(len(wire))
		copy(buf, wire)
		ps, err := parcel.DecodeBundleBorrowed(buf)
		if err != nil {
			b.Fatal(err)
		}
		parcel.ReleaseBundle(ps)
	}
}

// DecodeBundleCopy measures the copying decoder — the pre-borrowing
// receive path and the CopyDecode baseline of the e2e suite — staged
// exactly like the port's CopyDecode branch (pooled payload in, decode
// with copies out, payload recycled) so the DecodeBundle/DecodeBundleCopy
// gap isolates the decoder itself. Every iteration allocates the parcels,
// their Action strings and Args copies.
func DecodeBundleCopy(b *testing.B) {
	wire := parcel.EncodeBundle(makeParcels(16, 1, 64))
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := network.GetPayload(len(wire))
		copy(buf, wire)
		ps, err := parcel.DecodeBundle(buf)
		if err != nil {
			b.Fatal(err)
		}
		network.PutPayload(buf)
		_ = ps
	}
}

// newBenchPort builds a port on a null fabric with no registry and no
// trace.
func newBenchPort() *parcel.Port {
	return parcel.NewPort(parcel.Config{
		Locality: 0,
		Fabric:   &nullFabric{n: 4},
		Resolve:  func(g agas.GID) (int, error) { return int(uint64(g) >> 32), nil },
		Deliver:  func(p *parcel.Parcel) {},
	})
}

// PortEnqueue measures Put on the direct (no message handler) path: the
// inline cost a sending task pays. The queue is drained outside the
// timed region.
func PortEnqueue(b *testing.B) {
	port := newBenchPort()
	defer port.Close()
	ps := makeParcels(1, 1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := port.Put(ps[0]); err != nil {
			b.Fatal(err)
		}
		if port.PendingOutbound() >= 4096 {
			b.StopTimer()
			for port.DoBackgroundWork(1024) > 0 {
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	for port.DoBackgroundWork(1024) > 0 {
	}
}

// PortSend measures the full send pipeline — Put, shard dequeue, exact
// sizing, pooled-buffer bundle encoding, fabric handoff, buffer recycle —
// one message per iteration. Steady state must be 0 allocs/op.
func PortSend(b *testing.B) {
	port := newBenchPort()
	defer port.Close()
	ps := makeParcels(1, 1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := port.Put(ps[0]); err != nil {
			b.Fatal(err)
		}
		if port.DoBackgroundWork(1) != 1 {
			b.Fatal("expected one unit of background work")
		}
	}
}

// countingSink is an Enqueuer that recycles batches and counts parcels,
// standing in for the port at the coalescer's output.
type countingSink struct {
	parcels atomic.Int64
}

func (s *countingSink) EnqueueMessage(dst int, ps []*parcel.Parcel) {
	s.parcels.Add(int64(len(ps)))
	parcel.PutBatch(ps)
}

func (s *countingSink) EnqueueParcel(dst int, p *parcel.Parcel) {
	s.parcels.Add(1)
}

// CoalescerPut measures the striped coalescer's Put with the given
// number of concurrent sending goroutines, each targeting its own
// destination (the pattern striping is designed for). Flush timers are
// parked at a long interval so the measurement is the queue path itself.
func CoalescerPut(b *testing.B, workers int) {
	svc := timer.NewService(timer.ServiceOptions{})
	defer svc.Stop()
	sink := &countingSink{}
	c := coalescing.New(sink, coalescing.Params{NParcels: 64, Interval: time.Second},
		coalescing.Options{Action: "bench", TimerService: svc})
	defer c.Close()
	runSenders(b, workers, func(worker, i int, p *parcel.Parcel) {
		p.DestLocality = worker
		c.Put(p)
	})
}

// CoalescerPutBaseline is CoalescerPut against a single-mutex coalescer
// replicating the pre-striping design Put-for-Put: one lock around all
// destination queues, unbatched per-Put arrival statistics under that
// lock, unpooled batch slices grown by append, and the same flush-timer
// arming. The striped/baseline ratio is the speedup the sharding work
// claims.
func CoalescerPutBaseline(b *testing.B, workers int) {
	svc := timer.NewService(timer.ServiceOptions{})
	defer svc.Stop()
	sink := &countingSink{}
	c := newBaselineCoalescer(sink, svc, coalescing.Params{NParcels: 64, Interval: time.Second})
	runSenders(b, workers, func(worker, i int, p *parcel.Parcel) {
		p.DestLocality = worker
		c.Put(p)
	})
}

// runSenders drives b.N Puts split across workers goroutines, giving
// each goroutine its own reusable parcel.
func runSenders(b *testing.B, workers int, put func(worker, i int, p *parcel.Parcel)) {
	b.ReportAllocs()
	per := b.N / workers
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := makeParcels(1, w, 64)[0]
			for i := 0; i < per; i++ {
				put(w, i, p)
			}
		}(w)
	}
	wg.Wait()
}

// baselineCoalescer replicates the seed's single-mutex coalescer
// Put-for-Put (see the pre-striping internal/coalescing): one action-wide
// lock, per-Put arrival statistics recorded under it, the sparse-bypass
// check, batch slices grown by plain append with no pooling, the flush
// timer armed on a queue's first parcel and stopped when it fills, and an
// outBatch slice allocated per flush.
type baselineCoalescer struct {
	mu          sync.Mutex
	sink        coalescing.Enqueuer
	svc         *timer.Service
	params      coalescing.Params
	queues      map[int]*baselineQueue
	lastArrival time.Time
	parcels     *counters.Raw
	messages    *counters.Raw
	avgPerMsg   *counters.Average
	avgArrival  *counters.Average
	arrivalHist *stats.Histogram
}

type baselineQueue struct {
	dst      int
	parcels  []*parcel.Parcel
	bytes    int
	flushTmr *timer.Timer
}

type baselineBatch struct {
	dst     int
	parcels []*parcel.Parcel
}

func newBaselineCoalescer(sink coalescing.Enqueuer, svc *timer.Service, params coalescing.Params) *baselineCoalescer {
	if params.MaxBufferBytes <= 0 {
		params.MaxBufferBytes = coalescing.DefaultMaxBufferBytes
	}
	return &baselineCoalescer{
		sink:        sink,
		svc:         svc,
		params:      params,
		queues:      make(map[int]*baselineQueue),
		parcels:     counters.NewRaw(counters.Path{Object: "coalescing", Name: "count/parcels"}),
		messages:    counters.NewRaw(counters.Path{Object: "coalescing", Name: "count/messages"}),
		avgPerMsg:   counters.NewAverage(counters.Path{Object: "coalescing", Name: "count/average-parcels-per-message"}),
		avgArrival:  counters.NewAverage(counters.Path{Object: "coalescing", Name: "time/average-parcel-arrival"}),
		arrivalHist: stats.NewHistogram(0, 10000, 100),
	}
}

func (c *baselineCoalescer) Put(p *parcel.Parcel) {
	now := time.Now()
	var ready []baselineBatch

	c.mu.Lock()
	params := c.params
	c.parcels.Inc()

	tslp := time.Duration(-1)
	if !c.lastArrival.IsZero() {
		tslp = now.Sub(c.lastArrival)
		us := float64(tslp) / float64(time.Microsecond)
		c.avgArrival.Record(us)
		c.arrivalHist.Observe(us)
	}
	c.lastArrival = now

	q := c.queues[p.DestLocality]
	bypass := tslp >= 0 && tslp > params.Interval && (q == nil || len(q.parcels) == 0)
	if params.NParcels <= 1 || bypass {
		c.messages.Inc()
		c.avgPerMsg.Record(1)
		c.mu.Unlock()
		c.sink.EnqueueMessage(p.DestLocality, []*parcel.Parcel{p})
		return
	}

	if q == nil {
		dst := p.DestLocality
		q = &baselineQueue{dst: dst}
		q.flushTmr = c.svc.NewTimer(func() { c.flushDest(dst) })
		c.queues[dst] = q
	}
	q.parcels = append(q.parcels, p)
	q.bytes += p.WireSize()

	switch {
	case len(q.parcels) == 1:
		_ = q.flushTmr.Start(params.Interval)
	case len(q.parcels) >= params.NParcels || q.bytes >= params.MaxBufferBytes:
		q.flushTmr.Stop()
		ready = append(ready, baselineBatch{dst: q.dst, parcels: q.parcels})
		q.parcels, q.bytes = nil, 0
	}
	c.mu.Unlock()
	for _, batch := range ready {
		c.messages.Inc()
		c.avgPerMsg.Record(float64(len(batch.parcels)))
		c.sink.EnqueueMessage(batch.dst, batch.parcels)
	}
}

func (c *baselineCoalescer) flushDest(dst int) {
	c.mu.Lock()
	q := c.queues[dst]
	var ready []baselineBatch
	if q != nil && len(q.parcels) > 0 {
		ready = append(ready, baselineBatch{dst: dst, parcels: q.parcels})
		q.parcels, q.bytes = nil, 0
	}
	c.mu.Unlock()
	for _, batch := range ready {
		c.messages.Inc()
		c.avgPerMsg.Record(float64(len(batch.parcels)))
		c.sink.EnqueueMessage(batch.dst, batch.parcels)
	}
}

// Name helpers shared with cmd/amc-bench.
func CoalescerBenchName(baseline bool, workers int) string {
	kind := "Striped"
	if baseline {
		kind = "Baseline"
	}
	return fmt.Sprintf("CoalescerPut%s/goroutines=%d", kind, workers)
}
