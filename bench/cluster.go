package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
)

// ClusterConfig drives the multi-process cluster suite: real amc-node
// OS processes over loopback TCP sockets, spawned from NodeCommand.
type ClusterConfig struct {
	// NodeCommand is the argv prefix that runs one node — typically the
	// calling amc-bench binary itself plus "-as-node", so a single build
	// artifact is both driver and node.
	NodeCommand []string
	// Quick shrinks the suite to one tiny three-node run for CI smoke.
	Quick bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// RunTimeout bounds one whole cluster run, spawn to exit
	// (default 120s).
	RunTimeout time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.RunTimeout <= 0 {
		c.RunTimeout = 120 * time.Second
	}
	return c
}

func (c ClusterConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// ClusterPoint is one measured cluster run.
type ClusterPoint struct {
	Nodes       int     `json:"nodes"`
	Pattern     string  `json:"pattern"`
	Width       int     `json:"width"`
	Steps       int     `json:"steps"`
	Iterations  int     `json:"iterations"`
	TotalTasks  int64   `json:"total_tasks"`
	TasksRun    int64   `json:"tasks_run"`
	Completed   bool    `json:"completed"`
	WallMS      float64 `json:"wall_ms"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	Messages    int64   `json:"messages"`
	Parcels     int64   `json:"parcels"`
}

// ClusterRecovery is the crash-injection run: one node is hard-killed
// mid-run, the survivors detect it through gossiped membership and
// re-home its partition.
type ClusterRecovery struct {
	Nodes       int     `json:"nodes"`
	CrashedNode int     `json:"crashed_node"`
	Detected    bool    `json:"detected"`
	Completed   bool    `json:"completed"`
	TotalTasks  int64   `json:"total_tasks"`
	TasksRun    int64   `json:"tasks_run"`
	WallMS      float64 `json:"wall_ms"`
}

// ClusterPartitionPoint is one partition-heal run: a timed network
// partition is armed between health warm-up and the benchmark, the
// cluster rides it out (or convicts and later un-degrades), and the
// benchmark then measures post-heal throughput. The detector telemetry
// shows whether SWIM indirect probes suppressed false convictions and,
// when a conviction did land, how fast rejoin restored the cluster.
type ClusterPartitionPoint struct {
	Scenario           string  `json:"scenario"`
	Nodes              int     `json:"nodes"`
	Mode               string  `json:"mode"` // pair: one link cut; full: victim isolated
	PartitionNode      int     `json:"partition_node"`
	PartitionForMS     float64 `json:"partition_for_ms"`
	IndirectProbes     bool    `json:"indirect_probes"`
	Rejoin             bool    `json:"rejoin"`
	Suspicions         int64   `json:"suspicions"`
	Convictions        int64   `json:"convictions"`
	ProbesSent         int64   `json:"probes_sent"`
	ProbeAcks          int64   `json:"probe_acks"`
	Rebirths           int64   `json:"rebirths"`
	MaxRejoinLatencyMS float64 `json:"max_rejoin_latency_ms"`
	Completed          bool    `json:"completed"`
	WallMS             float64 `json:"wall_ms"`       // post-heal benchmark wall time
	TasksPerSec        float64 `json:"tasks_per_sec"` // post-heal throughput
}

// ClusterSuiteResult is the payload of BENCH_cluster.json.
type ClusterSuiteResult struct {
	WeakScaling   []ClusterPoint          `json:"weak_scaling"`
	StrongScaling []ClusterPoint          `json:"strong_scaling"`
	Recovery      *ClusterRecovery        `json:"recovery,omitempty"`
	PartitionHeal []ClusterPartitionPoint `json:"partition_heal,omitempty"`
}

// ClusterRunError carries the forensics of a failed multi-process run —
// every node's exit code and the tail of its stderr — so the driver can
// embed them in the partial report instead of asking the operator to
// reproduce a flaky multi-process timeout by hand.
type ClusterRunError struct {
	Reason      string
	Exits       []int
	StderrTails map[int]string
}

func (e *ClusterRunError) Error() string {
	return fmt.Sprintf("bench: %s (exits %v)", e.Reason, e.Exits)
}

// clusterRun parameterizes one multi-process execution.
type clusterRun struct {
	nodes          int
	pattern        string
	width          int
	steps          int
	iterations     int
	outputBytes    int
	recover        bool
	crashNode      int           // -1: no crash
	crashAfter     time.Duration // delay before the injected kill
	rejoin         bool          // partition-tolerance rejoin protocol
	noProbes       bool          // disable SWIM indirect probing (baseline)
	partitionNode  int           // victim of the timed partition
	partitionAfter time.Duration // warm-up → cut delay
	partitionFor   time.Duration // cut duration; 0 disables the partition
	partitionMode  string        // pair | full
}

// RunClusterSuite executes the weak- and strong-scaling sweeps (plus the
// crash-recovery run) and returns the aggregate. Quick mode runs a
// single tiny three-node cluster.
func RunClusterSuite(cfg ClusterConfig) (ClusterSuiteResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.NodeCommand) == 0 {
		return ClusterSuiteResult{}, fmt.Errorf("bench: cluster suite needs a node command")
	}
	var out ClusterSuiteResult

	if cfg.Quick {
		p, err := cfg.measure(clusterRun{
			nodes: 3, pattern: "stencil_1d", width: 6, steps: 16,
			outputBytes: 64, crashNode: -1,
		})
		if err != nil {
			return out, err
		}
		out.WeakScaling = append(out.WeakScaling, p)
		pp, err := cfg.measurePartition("pair-probes", clusterRun{
			nodes: 3, pattern: "stencil_1d", width: 6, steps: 16,
			outputBytes: 64, crashNode: -1, rejoin: true,
			partitionNode: 2, partitionAfter: 200 * time.Millisecond,
			partitionFor: 500 * time.Millisecond, partitionMode: "pair",
		})
		if err != nil {
			return out, err
		}
		out.PartitionHeal = append(out.PartitionHeal, pp)
		return out, nil
	}

	// Weak scaling: per-node work held at 16 points.
	for _, n := range []int{2, 3, 4} {
		p, err := cfg.measure(clusterRun{
			nodes: n, pattern: "stencil_1d", width: 16 * n, steps: 64,
			iterations: 500, outputBytes: 256, crashNode: -1,
		})
		if err != nil {
			return out, err
		}
		out.WeakScaling = append(out.WeakScaling, p)
	}

	// Strong scaling: total work held at 48 points.
	for _, n := range []int{2, 4} {
		p, err := cfg.measure(clusterRun{
			nodes: n, pattern: "stencil_1d", width: 48, steps: 64,
			iterations: 500, outputBytes: 256, crashNode: -1,
		})
		if err != nil {
			return out, err
		}
		out.StrongScaling = append(out.StrongScaling, p)
	}

	rec, err := cfg.measureRecovery()
	if err != nil {
		return out, err
	}
	out.Recovery = &rec

	// Partition-heal sweep: the same 3-node graph under (a) a single cut
	// link with indirect probes routing around it, (b) the same cut with
	// probes disabled — the false-conviction baseline the probes are
	// measured against — and (c) a full isolation long enough that a
	// conviction is guaranteed and only the rejoin protocol restores the
	// cluster.
	base := clusterRun{
		nodes: 3, pattern: "stencil_1d", width: 24, steps: 32,
		iterations: 200, outputBytes: 256, crashNode: -1, rejoin: true,
		partitionNode: 2, partitionAfter: 300 * time.Millisecond,
		partitionMode: "pair",
	}
	for _, sc := range []struct {
		name string
		mut  func(*clusterRun)
	}{
		{"pair-probes", func(r *clusterRun) { r.partitionFor = 800 * time.Millisecond }},
		{"pair-no-probes", func(r *clusterRun) { r.partitionFor = 800 * time.Millisecond; r.noProbes = true }},
		{"full-rejoin", func(r *clusterRun) { r.partitionFor = 1500 * time.Millisecond; r.partitionMode = "full" }},
	} {
		r := base
		sc.mut(&r)
		pp, err := cfg.measurePartition(sc.name, r)
		if err != nil {
			return out, err
		}
		out.PartitionHeal = append(out.PartitionHeal, pp)
	}
	return out, nil
}

// measure runs one cluster and distills the aggregate JSON node 0 wrote.
func (c ClusterConfig) measure(r clusterRun) (ClusterPoint, error) {
	c.logf("cluster: %d nodes, %s width=%d steps=%d", r.nodes, r.pattern, r.width, r.steps)
	agg, _, err := c.runCluster(r)
	if err != nil {
		return ClusterPoint{}, err
	}
	p := ClusterPoint{
		Nodes: agg.Nodes, Pattern: agg.Pattern, Width: agg.Width, Steps: agg.Steps,
		Iterations: agg.Iterations, TotalTasks: agg.TotalTasks, TasksRun: agg.TasksRun,
		Completed: agg.Completed, WallMS: float64(agg.MaxWallNS) / 1e6,
		Messages: agg.Messages, Parcels: agg.Parcels,
	}
	if agg.MaxWallNS > 0 {
		p.TasksPerSec = float64(agg.TasksRun) / (float64(agg.MaxWallNS) / 1e9)
	}
	if !p.Completed {
		return p, fmt.Errorf("bench: %d-node cluster ran %d/%d tasks", r.nodes, p.TasksRun, p.TotalTasks)
	}
	c.logf("cluster: done in %.1fms (%d tasks, %.0f tasks/s)", p.WallMS, p.TasksRun, p.TasksPerSec)
	return p, nil
}

// measureRecovery hard-kills node 2 of 3 mid-run with -recover on: the
// survivors must detect the crash via gossiped membership, re-home the
// dead node's partition, and still complete the whole graph.
func (c ClusterConfig) measureRecovery() (ClusterRecovery, error) {
	r := clusterRun{
		nodes: 3, pattern: "stencil_1d", width: 24, steps: 4000,
		iterations: 2000, outputBytes: 256, recover: true,
		crashNode: 2, crashAfter: 300 * time.Millisecond,
	}
	c.logf("cluster: recovery run, killing node %d after %s", r.crashNode, r.crashAfter)
	agg, codes, err := c.runCluster(r)
	if err != nil {
		return ClusterRecovery{}, err
	}
	rec := ClusterRecovery{
		Nodes: r.nodes, CrashedNode: r.crashNode,
		Completed: agg.Completed, TotalTasks: agg.TotalTasks, TasksRun: agg.TasksRun,
		WallMS: float64(agg.MaxWallNS) / 1e6,
	}
	for _, d := range agg.DownNodes {
		if d == r.crashNode {
			rec.Detected = true
		}
	}
	if !rec.Detected || !rec.Completed {
		return rec, fmt.Errorf("bench: recovery run detected=%v completed=%v (%d/%d tasks, exits %v)",
			rec.Detected, rec.Completed, rec.TasksRun, rec.TotalTasks, codes)
	}
	c.logf("cluster: recovered in %.1fms (%d/%d tasks)", rec.WallMS, rec.TasksRun, rec.TotalTasks)
	return rec, nil
}

// measurePartition runs one timed-partition scenario: every node arms
// the identical fault schedule locally after the join barrier, rides
// out the cut, converges back (rejoin), and only then runs the
// benchmark — so WallMS/TasksPerSec measure post-heal recovery.
func (c ClusterConfig) measurePartition(scenario string, r clusterRun) (ClusterPartitionPoint, error) {
	c.logf("cluster: partition scenario %s (%s, node %d cut for %s, probes=%v)",
		scenario, r.partitionMode, r.partitionNode, r.partitionFor, !r.noProbes)
	agg, _, err := c.runCluster(r)
	if err != nil {
		return ClusterPartitionPoint{}, err
	}
	p := ClusterPartitionPoint{
		Scenario: scenario, Nodes: agg.Nodes, Mode: agg.PartitionMode,
		PartitionNode: agg.PartitionNode, PartitionForMS: float64(agg.PartitionForNS) / 1e6,
		IndirectProbes: !r.noProbes, Rejoin: agg.Rejoin,
		Suspicions: agg.Suspicions, Convictions: agg.Convictions,
		ProbesSent: agg.ProbesSent, ProbeAcks: agg.ProbeAcks, Rebirths: agg.Rebirths,
		MaxRejoinLatencyMS: float64(agg.MaxRejoinLatencyNS) / 1e6,
		Completed:          agg.Completed, WallMS: float64(agg.MaxWallNS) / 1e6,
	}
	if agg.MaxWallNS > 0 {
		p.TasksPerSec = float64(agg.TasksRun) / (float64(agg.MaxWallNS) / 1e9)
	}
	if !p.Completed {
		return p, fmt.Errorf("bench: partition scenario %s ran %d/%d tasks", scenario, agg.TasksRun, agg.TotalTasks)
	}
	if r.rejoin && agg.MaxRejoinLatencyNS < 0 {
		return p, fmt.Errorf("bench: partition scenario %s never re-converged after the heal", scenario)
	}
	c.logf("cluster: %s done — %d/%d probes acked, %d suspicions, %d convictions, %d rebirths, rejoin %.1fms, %.0f tasks/s post-heal",
		scenario, p.ProbeAcks, p.ProbesSent, p.Suspicions, p.Convictions, p.Rebirths, p.MaxRejoinLatencyMS, p.TasksPerSec)
	return p, nil
}

// runCluster spawns r.nodes amc-node processes over loopback TCP with
// ephemeral ports — node 0 first (its bound address, learned through an
// address file, seeds the rest) — waits for them, and returns the
// aggregate node 0 wrote plus every node's exit code.
func (c ClusterConfig) runCluster(r clusterRun) (cluster.ClusterResult, []int, error) {
	dir, err := os.MkdirTemp("", "amc-cluster-")
	if err != nil {
		return cluster.ClusterResult{}, nil, err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "node0.addr")
	resultFile := filepath.Join(dir, "cluster.json")

	nodeArgs := func(id int, seed string) []string {
		args := append([]string(nil), c.NodeCommand[1:]...)
		args = append(args,
			"-id", strconv.Itoa(id), "-n", strconv.Itoa(r.nodes),
			"-bind", "127.0.0.1:0",
			"-pattern", r.pattern,
			"-width", strconv.Itoa(r.width),
			"-steps", strconv.Itoa(r.steps),
			"-iterations", strconv.Itoa(r.iterations),
			"-output-bytes", strconv.Itoa(r.outputBytes),
			"-join-timeout", "30s",
			"-timeout", (c.RunTimeout - 30*time.Second).String(),
		)
		if r.recover {
			args = append(args, "-recover")
		}
		if r.rejoin {
			args = append(args, "-rejoin")
		}
		if r.noProbes {
			args = append(args, "-no-indirect-probes")
		}
		if r.partitionFor > 0 {
			args = append(args,
				"-partition-node", strconv.Itoa(r.partitionNode),
				"-partition-after", r.partitionAfter.String(),
				"-partition-for", r.partitionFor.String(),
				"-partition-mode", r.partitionMode,
			)
		}
		if id == 0 {
			args = append(args, "-addr-file", addrFile, "-result", resultFile)
		} else {
			args = append(args, "-seeds", seed)
		}
		if id == r.crashNode && r.crashAfter > 0 {
			args = append(args, "-crash-after", r.crashAfter.String())
		}
		return args
	}

	procs := make([]*exec.Cmd, r.nodes)
	tails := make([]*tailWriter, r.nodes)
	codes := make([]int, r.nodes)
	start := func(id int, seed string) error {
		tw := newTailWriter(os.Stderr, nodeStderrTailBytes)
		cmd := exec.Command(c.NodeCommand[0], nodeArgs(id, seed)...)
		cmd.Stdout = tw
		cmd.Stderr = tw
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("bench: starting node %d: %w", id, err)
		}
		procs[id] = cmd
		tails[id] = tw
		return nil
	}
	kill := func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}
	// runErr wraps a failure with every node's exit code and stderr tail
	// so the driver can report the forensics instead of just "timed out".
	runErr := func(reason string) error {
		e := &ClusterRunError{Reason: reason, Exits: append([]int(nil), codes...), StderrTails: map[int]string{}}
		for id, tw := range tails {
			if tw != nil {
				if tail := tw.Tail(); tail != "" {
					e.StderrTails[id] = tail
				}
			}
		}
		return e
	}

	if err := start(0, ""); err != nil {
		return cluster.ClusterResult{}, nil, err
	}
	addr, err := awaitFile(addrFile, 15*time.Second)
	if err != nil {
		kill()
		_ = procs[0].Wait()
		return cluster.ClusterResult{}, nil, runErr(fmt.Sprintf("node 0 never published its address: %v", err))
	}
	seed := "0@" + addr
	for id := 1; id < r.nodes; id++ {
		if err := start(id, seed); err != nil {
			kill()
			return cluster.ClusterResult{}, nil, err
		}
	}

	done := make(chan struct{})
	go func() {
		for id, p := range procs {
			err := p.Wait()
			codes[id] = 0
			if ee, ok := err.(*exec.ExitError); ok {
				codes[id] = ee.ExitCode()
			} else if err != nil {
				codes[id] = -1
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(c.RunTimeout):
		kill()
		<-done
		return cluster.ClusterResult{}, codes, runErr(fmt.Sprintf("cluster run exceeded %s", c.RunTimeout))
	}

	for id, code := range codes {
		if id == r.crashNode {
			continue // hard-killed by design; any nonzero exit is fine
		}
		if code != 0 {
			return cluster.ClusterResult{}, codes, runErr(fmt.Sprintf("node %d exited %d", id, code))
		}
	}

	data, err := os.ReadFile(resultFile)
	if err != nil {
		return cluster.ClusterResult{}, codes, runErr(fmt.Sprintf("node 0 wrote no result: %v", err))
	}
	var agg cluster.ClusterResult
	if err := json.Unmarshal(data, &agg); err != nil {
		return cluster.ClusterResult{}, codes, fmt.Errorf("bench: bad cluster result: %w", err)
	}
	return agg, codes, nil
}

// nodeStderrTailBytes bounds how much of each node's output is retained
// for post-mortem reporting.
const nodeStderrTailBytes = 4096

// tailWriter tees a node's output to the suite's stderr while retaining
// the last nodeStderrTailBytes for attachment to a ClusterRunError.
type tailWriter struct {
	mu  sync.Mutex
	tee io.Writer
	buf []byte
	max int
}

func newTailWriter(tee io.Writer, max int) *tailWriter {
	return &tailWriter{tee: tee, max: max}
}

func (t *tailWriter) Write(p []byte) (int, error) {
	n, err := t.tee.Write(p)
	t.mu.Lock()
	t.buf = append(t.buf, p[:n]...)
	if len(t.buf) > t.max {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.max:]...)
	}
	t.mu.Unlock()
	return n, err
}

func (t *tailWriter) Tail() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// awaitFile polls until path exists with content, returning its first
// line trimmed.
func awaitFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			s := string(data)
			for i := 0; i < len(s); i++ {
				if s[i] == '\n' || s[i] == '\r' {
					return s[:i], nil
				}
			}
			return s, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timed out after %s", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
