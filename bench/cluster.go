package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/cluster"
)

// ClusterConfig drives the multi-process cluster suite: real amc-node
// OS processes over loopback TCP sockets, spawned from NodeCommand.
type ClusterConfig struct {
	// NodeCommand is the argv prefix that runs one node — typically the
	// calling amc-bench binary itself plus "-as-node", so a single build
	// artifact is both driver and node.
	NodeCommand []string
	// Quick shrinks the suite to one tiny three-node run for CI smoke.
	Quick bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// RunTimeout bounds one whole cluster run, spawn to exit
	// (default 120s).
	RunTimeout time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.RunTimeout <= 0 {
		c.RunTimeout = 120 * time.Second
	}
	return c
}

func (c ClusterConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// ClusterPoint is one measured cluster run.
type ClusterPoint struct {
	Nodes       int     `json:"nodes"`
	Pattern     string  `json:"pattern"`
	Width       int     `json:"width"`
	Steps       int     `json:"steps"`
	Iterations  int     `json:"iterations"`
	TotalTasks  int64   `json:"total_tasks"`
	TasksRun    int64   `json:"tasks_run"`
	Completed   bool    `json:"completed"`
	WallMS      float64 `json:"wall_ms"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	Messages    int64   `json:"messages"`
	Parcels     int64   `json:"parcels"`
}

// ClusterRecovery is the crash-injection run: one node is hard-killed
// mid-run, the survivors detect it through gossiped membership and
// re-home its partition.
type ClusterRecovery struct {
	Nodes       int     `json:"nodes"`
	CrashedNode int     `json:"crashed_node"`
	Detected    bool    `json:"detected"`
	Completed   bool    `json:"completed"`
	TotalTasks  int64   `json:"total_tasks"`
	TasksRun    int64   `json:"tasks_run"`
	WallMS      float64 `json:"wall_ms"`
}

// ClusterSuiteResult is the payload of BENCH_cluster.json.
type ClusterSuiteResult struct {
	WeakScaling   []ClusterPoint   `json:"weak_scaling"`
	StrongScaling []ClusterPoint   `json:"strong_scaling"`
	Recovery      *ClusterRecovery `json:"recovery,omitempty"`
}

// clusterRun parameterizes one multi-process execution.
type clusterRun struct {
	nodes       int
	pattern     string
	width       int
	steps       int
	iterations  int
	outputBytes int
	recover     bool
	crashNode   int           // -1: no crash
	crashAfter  time.Duration // delay before the injected kill
}

// RunClusterSuite executes the weak- and strong-scaling sweeps (plus the
// crash-recovery run) and returns the aggregate. Quick mode runs a
// single tiny three-node cluster.
func RunClusterSuite(cfg ClusterConfig) (ClusterSuiteResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.NodeCommand) == 0 {
		return ClusterSuiteResult{}, fmt.Errorf("bench: cluster suite needs a node command")
	}
	var out ClusterSuiteResult

	if cfg.Quick {
		p, err := cfg.measure(clusterRun{
			nodes: 3, pattern: "stencil_1d", width: 6, steps: 16,
			outputBytes: 64, crashNode: -1,
		})
		if err != nil {
			return out, err
		}
		out.WeakScaling = append(out.WeakScaling, p)
		return out, nil
	}

	// Weak scaling: per-node work held at 16 points.
	for _, n := range []int{2, 3, 4} {
		p, err := cfg.measure(clusterRun{
			nodes: n, pattern: "stencil_1d", width: 16 * n, steps: 64,
			iterations: 500, outputBytes: 256, crashNode: -1,
		})
		if err != nil {
			return out, err
		}
		out.WeakScaling = append(out.WeakScaling, p)
	}

	// Strong scaling: total work held at 48 points.
	for _, n := range []int{2, 4} {
		p, err := cfg.measure(clusterRun{
			nodes: n, pattern: "stencil_1d", width: 48, steps: 64,
			iterations: 500, outputBytes: 256, crashNode: -1,
		})
		if err != nil {
			return out, err
		}
		out.StrongScaling = append(out.StrongScaling, p)
	}

	rec, err := cfg.measureRecovery()
	if err != nil {
		return out, err
	}
	out.Recovery = &rec
	return out, nil
}

// measure runs one cluster and distills the aggregate JSON node 0 wrote.
func (c ClusterConfig) measure(r clusterRun) (ClusterPoint, error) {
	c.logf("cluster: %d nodes, %s width=%d steps=%d", r.nodes, r.pattern, r.width, r.steps)
	agg, _, err := c.runCluster(r)
	if err != nil {
		return ClusterPoint{}, err
	}
	p := ClusterPoint{
		Nodes: agg.Nodes, Pattern: agg.Pattern, Width: agg.Width, Steps: agg.Steps,
		Iterations: agg.Iterations, TotalTasks: agg.TotalTasks, TasksRun: agg.TasksRun,
		Completed: agg.Completed, WallMS: float64(agg.MaxWallNS) / 1e6,
		Messages: agg.Messages, Parcels: agg.Parcels,
	}
	if agg.MaxWallNS > 0 {
		p.TasksPerSec = float64(agg.TasksRun) / (float64(agg.MaxWallNS) / 1e9)
	}
	if !p.Completed {
		return p, fmt.Errorf("bench: %d-node cluster ran %d/%d tasks", r.nodes, p.TasksRun, p.TotalTasks)
	}
	c.logf("cluster: done in %.1fms (%d tasks, %.0f tasks/s)", p.WallMS, p.TasksRun, p.TasksPerSec)
	return p, nil
}

// measureRecovery hard-kills node 2 of 3 mid-run with -recover on: the
// survivors must detect the crash via gossiped membership, re-home the
// dead node's partition, and still complete the whole graph.
func (c ClusterConfig) measureRecovery() (ClusterRecovery, error) {
	r := clusterRun{
		nodes: 3, pattern: "stencil_1d", width: 24, steps: 4000,
		iterations: 2000, outputBytes: 256, recover: true,
		crashNode: 2, crashAfter: 300 * time.Millisecond,
	}
	c.logf("cluster: recovery run, killing node %d after %s", r.crashNode, r.crashAfter)
	agg, codes, err := c.runCluster(r)
	if err != nil {
		return ClusterRecovery{}, err
	}
	rec := ClusterRecovery{
		Nodes: r.nodes, CrashedNode: r.crashNode,
		Completed: agg.Completed, TotalTasks: agg.TotalTasks, TasksRun: agg.TasksRun,
		WallMS: float64(agg.MaxWallNS) / 1e6,
	}
	for _, d := range agg.DownNodes {
		if d == r.crashNode {
			rec.Detected = true
		}
	}
	if !rec.Detected || !rec.Completed {
		return rec, fmt.Errorf("bench: recovery run detected=%v completed=%v (%d/%d tasks, exits %v)",
			rec.Detected, rec.Completed, rec.TasksRun, rec.TotalTasks, codes)
	}
	c.logf("cluster: recovered in %.1fms (%d/%d tasks)", rec.WallMS, rec.TasksRun, rec.TotalTasks)
	return rec, nil
}

// runCluster spawns r.nodes amc-node processes over loopback TCP with
// ephemeral ports — node 0 first (its bound address, learned through an
// address file, seeds the rest) — waits for them, and returns the
// aggregate node 0 wrote plus every node's exit code.
func (c ClusterConfig) runCluster(r clusterRun) (cluster.ClusterResult, []int, error) {
	dir, err := os.MkdirTemp("", "amc-cluster-")
	if err != nil {
		return cluster.ClusterResult{}, nil, err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "node0.addr")
	resultFile := filepath.Join(dir, "cluster.json")

	nodeArgs := func(id int, seed string) []string {
		args := append([]string(nil), c.NodeCommand[1:]...)
		args = append(args,
			"-id", strconv.Itoa(id), "-n", strconv.Itoa(r.nodes),
			"-bind", "127.0.0.1:0",
			"-pattern", r.pattern,
			"-width", strconv.Itoa(r.width),
			"-steps", strconv.Itoa(r.steps),
			"-iterations", strconv.Itoa(r.iterations),
			"-output-bytes", strconv.Itoa(r.outputBytes),
			"-join-timeout", "30s",
			"-timeout", (c.RunTimeout - 30*time.Second).String(),
		)
		if r.recover {
			args = append(args, "-recover")
		}
		if id == 0 {
			args = append(args, "-addr-file", addrFile, "-result", resultFile)
		} else {
			args = append(args, "-seeds", seed)
		}
		if id == r.crashNode && r.crashAfter > 0 {
			args = append(args, "-crash-after", r.crashAfter.String())
		}
		return args
	}

	procs := make([]*exec.Cmd, r.nodes)
	start := func(id int, seed string) error {
		cmd := exec.Command(c.NodeCommand[0], nodeArgs(id, seed)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("bench: starting node %d: %w", id, err)
		}
		procs[id] = cmd
		return nil
	}
	kill := func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}

	if err := start(0, ""); err != nil {
		return cluster.ClusterResult{}, nil, err
	}
	addr, err := awaitFile(addrFile, 15*time.Second)
	if err != nil {
		kill()
		_ = procs[0].Wait()
		return cluster.ClusterResult{}, nil, fmt.Errorf("bench: node 0 never published its address: %w", err)
	}
	seed := "0@" + addr
	for id := 1; id < r.nodes; id++ {
		if err := start(id, seed); err != nil {
			kill()
			return cluster.ClusterResult{}, nil, err
		}
	}

	codes := make([]int, r.nodes)
	done := make(chan struct{})
	go func() {
		for id, p := range procs {
			err := p.Wait()
			codes[id] = 0
			if ee, ok := err.(*exec.ExitError); ok {
				codes[id] = ee.ExitCode()
			} else if err != nil {
				codes[id] = -1
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(c.RunTimeout):
		kill()
		<-done
		return cluster.ClusterResult{}, codes, fmt.Errorf("bench: cluster run exceeded %s (exits %v)", c.RunTimeout, codes)
	}

	for id, code := range codes {
		if id == r.crashNode {
			continue // hard-killed by design; any nonzero exit is fine
		}
		if code != 0 {
			return cluster.ClusterResult{}, codes, fmt.Errorf("bench: node %d exited %d", id, code)
		}
	}

	data, err := os.ReadFile(resultFile)
	if err != nil {
		return cluster.ClusterResult{}, codes, fmt.Errorf("bench: node 0 wrote no result: %w", err)
	}
	var agg cluster.ClusterResult
	if err := json.Unmarshal(data, &agg); err != nil {
		return cluster.ClusterResult{}, codes, fmt.Errorf("bench: bad cluster result: %w", err)
	}
	return agg, codes, nil
}

// awaitFile polls until path exists with content, returning its first
// line trimmed.
func awaitFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			s := string(data)
			for i := 0; i < len(s); i++ {
				if s[i] == '\n' || s[i] == '\r' {
					return s[:i], nil
				}
			}
			return s, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timed out after %s", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
