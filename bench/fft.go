package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/apps/fft"
	"repro/internal/cluster"
	"repro/internal/coalescing"
	"repro/internal/collectives"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// FFTConfig drives the distributed-FFT suite: the in-process sweep over
// {all-to-all algorithm variant × coalescing arm × grid size} and the
// multi-process cluster stage.
type FFTConfig struct {
	// NodeCommand is the argv prefix that runs one amc-node process for
	// the cluster stage (typically the amc-bench binary plus "-as-node").
	// Empty skips the cluster stage.
	NodeCommand []string
	// Quick shrinks the sweep to CI-smoke size.
	Quick bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// RunTimeout bounds one cluster run, spawn to exit (default 120s).
	RunTimeout time.Duration
}

func (c FFTConfig) withDefaults() FFTConfig {
	if c.RunTimeout <= 0 {
		c.RunTimeout = 120 * time.Second
	}
	return c
}

func (c FFTConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// fftArm is one coalescing configuration of the sweep: either a static
// parameter point or the adaptive MultiTuner.
type fftArm struct {
	name     string
	params   coalescing.Params // static arm (NParcels <= 1: coalescing off)
	adaptive bool              // MultiTuner arm; params is its starting point
}

// FFTPoint is one in-process measurement: a full 2-D FFT (repeated
// Iterations times) under one {variant, coalescing arm, grid} cell.
type FFTPoint struct {
	Algorithm  string `json:"algorithm"`
	Rows       int    `json:"rows"`
	Cols       int    `json:"cols"`
	Localities int    `json:"localities"`
	Iterations int    `json:"iterations"`
	// Coalescing names the arm ("off", "n=16/500µs", "adaptive").
	Coalescing string  `json:"coalescing"`
	NParcels   int     `json:"nparcels"`
	IntervalUS float64 `json:"interval_us"`
	Adaptive   bool    `json:"adaptive"`
	// Decisions is the adaptive arm's tuner decision count (0 otherwise).
	Decisions int64 `json:"decisions,omitempty"`
	// WallMS is mean wall time per transform; NetworkOverhead is Eq. 4
	// and TaskOverheadUS Eq. 2 over the whole measured window.
	WallMS          float64 `json:"wall_ms"`
	NetworkOverhead float64 `json:"network_overhead"`
	TaskOverheadUS  float64 `json:"task_overhead_us"`
	// Verified: the final iteration's output was bit-exact against the
	// sequential reference on every locality.
	Verified bool `json:"verified"`
}

// FFTVariantSummary aggregates one algorithm variant across the sweep:
// the Pearson correlation between Eq. 4 overhead and wall time over its
// points (the paper's overhead-predicts-performance claim, here tested
// on collective bursts), and its best cell.
type FFTVariantSummary struct {
	Algorithm      string  `json:"algorithm"`
	Points         int     `json:"points"`
	PearsonR       float64 `json:"pearson_r"`
	RValid         bool    `json:"r_valid"`
	BestWallMS     float64 `json:"best_wall_ms"`
	BestCoalescing string  `json:"best_coalescing"`
	MeanOverhead   float64 `json:"mean_overhead"`
}

// FFTComparison records one matched cell where ring beat direct.
type FFTComparison struct {
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	Coalescing string  `json:"coalescing"`
	DirectWall float64 `json:"direct_wall_ms"`
	RingWall   float64 `json:"ring_wall_ms"`
	DirectOH   float64 `json:"direct_overhead"`
	RingOH     float64 `json:"ring_overhead"`
	// OnWall / OnOverhead say which metric(s) ring won.
	OnWall     bool `json:"on_wall"`
	OnOverhead bool `json:"on_overhead"`
}

// FFTClusterPoint is one multi-process cluster run of the FFT app.
type FFTClusterPoint struct {
	Nodes           int     `json:"nodes"`
	Algorithm       string  `json:"algorithm"`
	Rows            int     `json:"rows"`
	Cols            int     `json:"cols"`
	CoalesceParcels int     `json:"coalesce_parcels"`
	Completed       bool    `json:"completed"`
	Verified        bool    `json:"verified"`
	WallMS          float64 `json:"wall_ms"`
	NetOverhead     float64 `json:"net_overhead"`
	Messages        int64   `json:"messages"`
	Parcels         int64   `json:"parcels"`
}

// FFTSuiteResult is the payload of BENCH_fft.json.
type FFTSuiteResult struct {
	Points   []FFTPoint          `json:"points"`
	Variants []FFTVariantSummary `json:"variants"`
	Cluster  []FFTClusterPoint   `json:"cluster,omitempty"`
	// RingWins lists the matched cells where the paced ring rotation beat
	// the direct burst on wall time or Eq. 4 overhead.
	RingWins []FFTComparison `json:"ring_wins,omitempty"`
}

// fftGrid is one swept payload size.
type fftGrid struct{ rows, cols int }

// RunFFTSuite executes the in-process sweep and the cluster stage.
func RunFFTSuite(cfg FFTConfig) (FFTSuiteResult, error) {
	cfg = cfg.withDefaults()
	var out FFTSuiteResult

	const localities = 4
	variants := []collectives.Algorithm{collectives.AlgDirect, collectives.AlgRing}
	grids := []fftGrid{{32, 32}, {64, 64}}
	arms := []fftArm{
		{name: "off"},
		{name: "n=4/100µs", params: coalescing.Params{NParcels: 4, Interval: 100 * time.Microsecond}},
		{name: "n=16/500µs", params: coalescing.Params{NParcels: 16, Interval: 500 * time.Microsecond}},
		{name: "adaptive", params: coalescing.Params{NParcels: 1, Interval: time.Microsecond}, adaptive: true},
	}
	iterations := 6
	if cfg.Quick {
		grids = grids[:1]
		arms = []fftArm{arms[0], arms[3]}
		iterations = 2
	}

	for _, alg := range variants {
		for _, g := range grids {
			for _, arm := range arms {
				p, err := measureFFT(alg, g, arm, localities, iterations)
				if err != nil {
					return out, fmt.Errorf("bench: fft %s %dx%d %s: %w", alg, g.rows, g.cols, arm.name, err)
				}
				cfg.logf("fft: %-6s %2dx%-2d %-10s wall=%.2fms n_oh=%.4f verified=%v",
					p.Algorithm, p.Rows, p.Cols, p.Coalescing, p.WallMS, p.NetworkOverhead, p.Verified)
				out.Points = append(out.Points, p)
				if !p.Verified {
					return out, fmt.Errorf("bench: fft %s %dx%d %s: output not bit-exact", alg, g.rows, g.cols, arm.name)
				}
			}
		}
	}

	out.Variants = summarizeFFTVariants(out.Points)
	out.RingWins = fftRingWins(out.Points)

	if len(cfg.NodeCommand) > 0 {
		clusterRuns := []FFTClusterPoint{
			{Nodes: 3, Algorithm: "direct", Rows: 32, Cols: 32},
			{Nodes: 3, Algorithm: "ring", Rows: 32, Cols: 32},
			{Nodes: 3, Algorithm: "ring", Rows: 64, Cols: 64, CoalesceParcels: 8},
		}
		if cfg.Quick {
			clusterRuns = clusterRuns[:2]
			for i := range clusterRuns {
				clusterRuns[i].Rows, clusterRuns[i].Cols = 16, 16
			}
		}
		for _, r := range clusterRuns {
			p, err := cfg.measureFFTCluster(r)
			if err != nil {
				return out, err
			}
			out.Cluster = append(out.Cluster, p)
		}
	}
	return out, nil
}

// measureFFT runs one sweep cell on a fresh simulated runtime: a warm-up
// transform, then iterations measured ones, verifying the last against
// the sequential reference.
func measureFFT(alg collectives.Algorithm, g fftGrid, arm fftArm, L, iterations int) (FFTPoint, error) {
	rt := runtime.New(runtime.Config{
		Localities:         L,
		WorkersPerLocality: 2,
		CostModel: network.CostModel{
			SendOverhead: 2 * time.Microsecond,
			Latency:      5 * time.Microsecond,
		},
	})
	defer rt.Shutdown()

	p := FFTPoint{
		Algorithm: alg.String(), Rows: g.rows, Cols: g.cols,
		Localities: L, Iterations: iterations,
		Coalescing: arm.name, NParcels: arm.params.NParcels,
		IntervalUS: float64(arm.params.Interval.Microseconds()),
		Adaptive:   arm.adaptive,
	}

	comm, err := collectives.NewComm(rt, "bench-fft", collectives.Options{Algorithm: alg})
	if err != nil {
		return p, err
	}
	defer comm.Close()

	var tuner *adaptive.MultiTuner
	if arm.params.NParcels > 0 || arm.adaptive {
		if err := rt.EnableCoalescing(collectives.Action, arm.params); err != nil {
			return p, err
		}
	}
	if arm.adaptive {
		tuner = adaptive.NewMultiTuner(rt, collectives.Action, adaptive.MultiTunerConfig{
			SampleInterval: 2 * time.Millisecond,
			MinWindowTasks: 8,
		})
		tuner.Start()
		defer tuner.Stop()
	}

	cfgFFT := fft.Config{Rows: g.rows, Cols: g.cols, Seed: 0xbe4c}
	run := func(tag string) ([][][]complex128, error) {
		blocks := make([][][]complex128, L)
		errs := make([]error, L)
		var wg sync.WaitGroup
		for l := 0; l < L; l++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				blocks[l], errs[l] = fft.Distributed(comm, l, cfgFFT, tag)
			}(l)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return blocks, nil
	}

	if _, err := run("warmup"); err != nil {
		return p, err
	}

	before := metrics.Snapshot(rt)
	start := time.Now()
	var blocks [][][]complex128
	for it := 0; it < iterations; it++ {
		if blocks, err = run(fmt.Sprintf("it%d", it)); err != nil {
			return p, err
		}
	}
	wall := time.Since(start)
	after := metrics.Snapshot(rt)

	bg := after.BackgroundWork - before.BackgroundWork
	td := after.TaskDuration - before.TaskDuration
	tasks := after.Tasks - before.Tasks
	p.WallMS = wall.Seconds() * 1e3 / float64(iterations)
	if busy := td + bg; busy > 0 {
		p.NetworkOverhead = float64(bg) / float64(busy)
	}
	if tasks > 0 {
		p.TaskOverheadUS = float64(td-(after.ExecDuration-before.ExecDuration)) /
			float64(tasks) / float64(time.Microsecond)
	}
	if tuner != nil {
		tuner.Stop()
		if err := tuner.Err(); err != nil {
			return p, fmt.Errorf("tuner: %w", err)
		}
		p.Decisions = tuner.DecisionCount()
	}

	ref := fft.Reference(cfgFFT)
	p.Verified = true
	for l := 0; l < L; l++ {
		lo, _ := fft.Range(cfgFFT.Rows, L, l)
		if err := fft.VerifyRows(ref, lo, blocks[l]); err != nil {
			p.Verified = false
			return p, err
		}
	}
	return p, nil
}

// summarizeFFTVariants computes, per algorithm variant, the Pearson
// correlation between Eq. 4 overhead and wall time across its sweep
// cells plus the best cell.
func summarizeFFTVariants(points []FFTPoint) []FFTVariantSummary {
	order := []string{}
	byAlg := map[string][]FFTPoint{}
	for _, p := range points {
		if _, ok := byAlg[p.Algorithm]; !ok {
			order = append(order, p.Algorithm)
		}
		byAlg[p.Algorithm] = append(byAlg[p.Algorithm], p)
	}
	var out []FFTVariantSummary
	for _, alg := range order {
		ps := byAlg[alg]
		s := FFTVariantSummary{Algorithm: alg, Points: len(ps), BestWallMS: ps[0].WallMS, BestCoalescing: ps[0].Coalescing}
		var xs, ys []float64
		for _, p := range ps {
			xs = append(xs, p.NetworkOverhead)
			ys = append(ys, p.WallMS)
			s.MeanOverhead += p.NetworkOverhead
			if p.WallMS < s.BestWallMS {
				s.BestWallMS, s.BestCoalescing = p.WallMS, p.Coalescing
			}
		}
		s.MeanOverhead /= float64(len(ps))
		if r, err := stats.Pearson(xs, ys); err == nil {
			s.PearsonR, s.RValid = r, true
		}
		out = append(out, s)
	}
	return out
}

// fftRingWins pairs ring and direct points measured under the same
// {grid, coalescing arm} and returns the cells ring won.
func fftRingWins(points []FFTPoint) []FFTComparison {
	type cell struct {
		rows, cols int
		arm        string
	}
	direct := map[cell]FFTPoint{}
	for _, p := range points {
		if p.Algorithm == collectives.AlgDirect.String() {
			direct[cell{p.Rows, p.Cols, p.Coalescing}] = p
		}
	}
	var wins []FFTComparison
	for _, p := range points {
		if p.Algorithm != collectives.AlgRing.String() {
			continue
		}
		d, ok := direct[cell{p.Rows, p.Cols, p.Coalescing}]
		if !ok {
			continue
		}
		c := FFTComparison{
			Rows: p.Rows, Cols: p.Cols, Coalescing: p.Coalescing,
			DirectWall: d.WallMS, RingWall: p.WallMS,
			DirectOH: d.NetworkOverhead, RingOH: p.NetworkOverhead,
			OnWall:     p.WallMS < d.WallMS,
			OnOverhead: p.NetworkOverhead < d.NetworkOverhead,
		}
		if c.OnWall || c.OnOverhead {
			wins = append(wins, c)
		}
	}
	return wins
}

// measureFFTCluster spawns r.Nodes amc-node processes running the FFT
// app over loopback TCP (node 0 seeds the rest through an address file)
// and distills the aggregate node 0 wrote.
func (c FFTConfig) measureFFTCluster(r FFTClusterPoint) (FFTClusterPoint, error) {
	c.logf("fft cluster: %d nodes, %s %dx%d coalesce=%d", r.Nodes, r.Algorithm, r.Rows, r.Cols, r.CoalesceParcels)
	dir, err := os.MkdirTemp("", "amc-fft-")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "node0.addr")
	resultFile := filepath.Join(dir, "cluster.json")

	nodeArgs := func(id int, seed string) []string {
		args := append([]string(nil), c.NodeCommand[1:]...)
		args = append(args,
			"-id", strconv.Itoa(id), "-n", strconv.Itoa(r.Nodes),
			"-bind", "127.0.0.1:0",
			"-app", "fft",
			"-fft-rows", strconv.Itoa(r.Rows),
			"-fft-cols", strconv.Itoa(r.Cols),
			"-fft-alg", r.Algorithm,
			"-fft-iterations", "2",
			"-join-timeout", "30s",
			"-timeout", (c.RunTimeout - 30*time.Second).String(),
		)
		if r.CoalesceParcels > 0 {
			args = append(args,
				"-fft-coalesce-parcels", strconv.Itoa(r.CoalesceParcels),
				"-fft-coalesce-interval", "200µs")
		}
		if id == 0 {
			args = append(args, "-addr-file", addrFile, "-result", resultFile)
		} else {
			args = append(args, "-seeds", seed)
		}
		return args
	}

	procs := make([]*exec.Cmd, r.Nodes)
	start := func(id int, seed string) error {
		cmd := exec.Command(c.NodeCommand[0], nodeArgs(id, seed)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("bench: starting fft node %d: %w", id, err)
		}
		procs[id] = cmd
		return nil
	}
	kill := func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}

	if err := start(0, ""); err != nil {
		return r, err
	}
	addr, err := awaitFile(addrFile, 15*time.Second)
	if err != nil {
		kill()
		_ = procs[0].Wait()
		return r, fmt.Errorf("bench: fft node 0 never published its address: %w", err)
	}
	for id := 1; id < r.Nodes; id++ {
		if err := start(id, "0@"+addr); err != nil {
			kill()
			return r, err
		}
	}

	codes := make([]int, r.Nodes)
	done := make(chan struct{})
	go func() {
		for id, p := range procs {
			err := p.Wait()
			codes[id] = 0
			if ee, ok := err.(*exec.ExitError); ok {
				codes[id] = ee.ExitCode()
			} else if err != nil {
				codes[id] = -1
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(c.RunTimeout):
		kill()
		<-done
		return r, fmt.Errorf("bench: fft cluster run exceeded %s (exits %v)", c.RunTimeout, codes)
	}
	for id, code := range codes {
		if code != 0 {
			return r, fmt.Errorf("bench: fft node %d exited %d", id, code)
		}
	}

	agg, err := readClusterResult(resultFile)
	if err != nil {
		return r, err
	}
	r.Completed = agg.Completed
	r.Verified = agg.Verified
	r.WallMS = float64(agg.MaxWallNS) / 1e6
	for _, n := range agg.PerNode {
		r.NetOverhead += n.NetOverhead
	}
	if len(agg.PerNode) > 0 {
		r.NetOverhead /= float64(len(agg.PerNode))
	}
	r.Messages = agg.Messages
	r.Parcels = agg.Parcels
	if !r.Completed || !r.Verified {
		return r, fmt.Errorf("bench: fft cluster %s completed=%v verified=%v", r.Algorithm, r.Completed, r.Verified)
	}
	c.logf("fft cluster: %s done in %.1fms verified=%v", r.Algorithm, r.WallMS, r.Verified)
	return r, nil
}

// readClusterResult loads the aggregate JSON node 0 wrote.
func readClusterResult(path string) (cluster.ClusterResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return cluster.ClusterResult{}, fmt.Errorf("bench: fft node 0 wrote no result: %w", err)
	}
	var agg cluster.ClusterResult
	if err := json.Unmarshal(data, &agg); err != nil {
		return cluster.ClusterResult{}, fmt.Errorf("bench: bad fft cluster result: %w", err)
	}
	return agg, nil
}
