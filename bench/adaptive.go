package bench

import (
	"time"

	"repro/internal/taskbench"
)

// TaskbenchABConfig returns the controller A/B configuration behind
// BENCH_adaptive.json: the global OverheadTuner against the
// per-destination MultiTuner on a mixed uniform workload and on the
// deliberately skewed fan-in pattern, both arms starting uncoalesced.
// quick shrinks the workload to a CI-smoke size.
func TaskbenchABConfig(quick bool) taskbench.ABConfig {
	cfg := taskbench.ABConfig{
		Localities:         4,
		WorkersPerLocality: 2,
		Graph: taskbench.Graph{
			Width:       32,
			Steps:       16,
			Iterations:  64,
			OutputBytes: 32,
		},
		Runs:           20,
		SampleInterval: 10 * time.Millisecond,
	}
	if quick {
		cfg.Graph.Width = 8
		cfg.Graph.Steps = 4
		cfg.Graph.Iterations = 8
		cfg.Runs = 4
		cfg.SampleInterval = 5 * time.Millisecond
		cfg.MinWindowTasks = 10
	}
	return cfg
}
