package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/timer"
)

// Scheduler micro-benchmarks. The work-stealing scheduler
// (runtime.SchedBench) is always measured against the seed's
// single-channel design (runtime.ChanSchedBench) so the speedup is a
// measurement, not a claim: spawn/execute throughput at several worker
// counts on fine-grained tasks, cold-start empty-task latency through
// the park/wake path, a steal-heavy imbalanced load, and background
// network work under task saturation.

// schedPool abstracts the two scheduler implementations under test.
type schedPool interface {
	Spawn(fn func()) bool
	Stats() runtime.SchedStats
	Stop()
}

func newPool(stealing bool, cfg runtime.SchedBenchConfig) schedPool {
	if stealing {
		return runtime.NewSchedBench(cfg)
	}
	return runtime.NewChanSchedBench(cfg)
}

// SchedSpawnExecute measures end-to-end spawn+execute throughput:
// `workers` producer goroutines spawn b.N fine-grained tasks
// (taskSpin of busy work each; 0 means empty) and wait for all of them
// to finish. ns/op is the per-task cost of the whole scheduling cycle.
func SchedSpawnExecute(b *testing.B, stealing bool, workers int, taskSpin time.Duration) {
	p := newPool(stealing, runtime.SchedBenchConfig{Workers: workers})
	defer p.Stop()
	body := func() {}
	if taskSpin > 0 {
		body = func() { timer.Spin(taskSpin) }
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(b.N)
	task := func() { body(); wg.Done() }
	per := b.N / workers
	extra := b.N - per*workers
	var producers sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		producers.Add(1)
		go func(n int) {
			defer producers.Done()
			for i := 0; i < n; i++ {
				if !p.Spawn(task) {
					b.Error("spawn failed")
					return
				}
			}
		}(n)
	}
	producers.Wait()
	wg.Wait()
	b.StopTimer()
	// The last task's accounting epilogue runs just after its body
	// signals the WaitGroup, so give the counter a moment to catch up.
	deadline := time.Now().Add(time.Second)
	for p.Stats().Tasks < int64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("executed %d of %d tasks", p.Stats().Tasks, b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// SchedEmptyTaskLatency measures the cold-path latency of one task
// spawned into an otherwise idle scheduler: the spawn, the wake of a
// parked (or sleeping) worker, the execution and the completion signal.
func SchedEmptyTaskLatency(b *testing.B, stealing bool, workers int) {
	p := newPool(stealing, runtime.SchedBenchConfig{Workers: workers})
	defer p.Stop()
	done := make(chan struct{})
	task := func() { done <- struct{}{} }
	// Let the workers reach their deepest idle state before measuring.
	time.Sleep(5 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Spawn(task) {
			b.Fatal("spawn failed")
		}
		<-done
	}
}

// SchedStealImbalance preloads every task onto a single worker's inject
// queue, so the rest of the pool makes progress only by stealing. The
// single-channel baseline has no per-worker queues — all workers share
// the one channel — so it is reported for scale, not contrast, via the
// plain Spawn path.
func SchedStealImbalance(b *testing.B, stealing bool, workers int) {
	cfg := runtime.SchedBenchConfig{Workers: workers}
	b.ReportAllocs()
	if stealing {
		p := runtime.NewSchedBench(cfg)
		defer p.Stop()
		var wg sync.WaitGroup
		wg.Add(b.N)
		task := func() { timer.Spin(time.Microsecond); wg.Done() }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !p.SpawnTo(0, task) {
				b.Fatal("spawn failed")
			}
		}
		wg.Wait()
		return
	}
	p := runtime.NewChanSchedBench(cfg)
	defer p.Stop()
	var wg sync.WaitGroup
	wg.Add(b.N)
	task := func() { timer.Spin(time.Microsecond); wg.Done() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Spawn(task) {
			b.Fatal("spawn failed")
		}
	}
	wg.Wait()
}

// SchedBackgroundStarvation saturates the pool with a steady task
// stream while background network work is always available, and reports
// how many background units were processed per executed task
// (bg-units/task). The work-stealing scheduler interleaves a periodic
// background batch even when tasks are runnable; the single-channel
// baseline only reaches the network when a worker happens to find its
// queue empty.
func SchedBackgroundStarvation(b *testing.B, stealing bool, workers int) {
	var bgDone atomic.Int64
	bg := func(maxUnits int) int {
		bgDone.Add(int64(maxUnits))
		return maxUnits
	}
	p := newPool(stealing, runtime.SchedBenchConfig{Workers: workers, Background: bg})
	defer p.Stop()
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(b.N)
	task := func() { timer.Spin(time.Microsecond); wg.Done() }
	for i := 0; i < b.N; i++ {
		if !p.Spawn(task) {
			b.Fatal("spawn failed")
		}
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(bgDone.Load())/float64(b.N), "bg-units/task")
}

// SchedBenchName names a scheduler benchmark variant consistently for
// bench_test.go and cmd/amc-bench.
func SchedBenchName(kind string, stealing bool, workers int) string {
	impl := "WorkStealing"
	if !stealing {
		impl = "Chan"
	}
	return fmt.Sprintf("Sched%s%s/workers=%d", kind, impl, workers)
}
