package bench

import (
	"testing"

	"repro/internal/taskbench"
)

// Thin wrappers so the suite runs under `go test -bench`; the bodies in
// bench.go are shared with cmd/amc-bench.

func BenchmarkEncodeBundle(b *testing.B) { EncodeBundle(b) }
func BenchmarkDecodeBundle(b *testing.B) { DecodeBundle(b) }
func BenchmarkPortEnqueue(b *testing.B)  { PortEnqueue(b) }
func BenchmarkPortSend(b *testing.B)     { PortSend(b) }

func BenchmarkCoalescerPut(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(CoalescerBenchName(false, workers), func(b *testing.B) {
			CoalescerPut(b, workers)
		})
		b.Run(CoalescerBenchName(true, workers), func(b *testing.B) {
			CoalescerPutBaseline(b, workers)
		})
	}
}

// TestZeroAllocSendPath asserts the acceptance criterion directly:
// steady-state bundle encoding and the port send pipeline perform zero
// allocations per operation.
func TestZeroAllocSendPath(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement skipped in -short mode")
	}
	for _, tc := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EncodeBundle", EncodeBundle},
		{"PortSend", PortSend},
	} {
		r := testing.Benchmark(tc.fn)
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s: %d allocs/op, want 0", tc.name, a)
		}
	}
}

func BenchmarkTaskbenchGraph(b *testing.B) {
	for _, pattern := range []taskbench.Pattern{taskbench.Stencil1D, taskbench.FFT, taskbench.Random} {
		b.Run(TaskbenchBenchName(pattern), func(b *testing.B) {
			TaskbenchGraph(b, pattern)
		})
	}
}

func BenchmarkReliableChaos(b *testing.B) {
	for _, lossPct := range []float64{0, 1, 5, 10} {
		b.Run(ReliableBenchName(lossPct), func(b *testing.B) {
			ReliableChaos(b, lossPct)
		})
	}
}

func BenchmarkReliableLinkDownDetection(b *testing.B) { ReliableLinkDownDetection(b) }

func BenchmarkSchedSpawnExecute(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		for _, stealing := range []bool{true, false} {
			b.Run(SchedBenchName("SpawnExecute", stealing, workers), func(b *testing.B) {
				SchedSpawnExecute(b, stealing, workers, 0)
			})
		}
	}
}

func BenchmarkSchedEmptyTaskLatency(b *testing.B) {
	for _, stealing := range []bool{true, false} {
		b.Run(SchedBenchName("EmptyTaskLatency", stealing, 4), func(b *testing.B) {
			SchedEmptyTaskLatency(b, stealing, 4)
		})
	}
}

func BenchmarkSchedStealImbalance(b *testing.B) {
	for _, stealing := range []bool{true, false} {
		b.Run(SchedBenchName("StealImbalance", stealing, 16), func(b *testing.B) {
			SchedStealImbalance(b, stealing, 16)
		})
	}
}

func BenchmarkSchedBackgroundStarvation(b *testing.B) {
	for _, stealing := range []bool{true, false} {
		b.Run(SchedBenchName("BackgroundStarvation", stealing, 4), func(b *testing.B) {
			SchedBackgroundStarvation(b, stealing, 4)
		})
	}
}
