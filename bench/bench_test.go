package bench

import (
	"testing"

	"repro/internal/taskbench"
)

// Thin wrappers so the suite runs under `go test -bench`; the bodies in
// bench.go are shared with cmd/amc-bench.

func BenchmarkEncodeBundle(b *testing.B)     { EncodeBundle(b) }
func BenchmarkDecodeBundle(b *testing.B)     { DecodeBundle(b) }
func BenchmarkDecodeBundleCopy(b *testing.B) { DecodeBundleCopy(b) }
func BenchmarkPortEnqueue(b *testing.B)      { PortEnqueue(b) }
func BenchmarkPortSend(b *testing.B)         { PortSend(b) }

func BenchmarkCoalescerPut(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(CoalescerBenchName(false, workers), func(b *testing.B) {
			CoalescerPut(b, workers)
		})
		b.Run(CoalescerBenchName(true, workers), func(b *testing.B) {
			CoalescerPutBaseline(b, workers)
		})
	}
}

// TestZeroAllocSendPath asserts the acceptance criterion directly:
// steady-state bundle encoding, the borrowing decode, and the port send
// pipeline all perform zero allocations per operation.
func TestZeroAllocSendPath(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement skipped in -short mode")
	}
	for _, tc := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EncodeBundle", EncodeBundle},
		{"DecodeBundle", DecodeBundle},
		{"PortSend", PortSend},
	} {
		r := testing.Benchmark(tc.fn)
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s: %d allocs/op, want 0", tc.name, a)
		}
	}
}

// TestE2EQuick smoke-runs the end-to-end suite at CI size so the full
// stack sweep (both fabrics, both decoders) stays exercised by go test.
func TestE2EQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e sweep skipped in -short mode")
	}
	res, err := RunE2E(E2EConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("e2e: no points measured")
	}
	for _, p := range res.Points {
		if p.ParcelsPerSec <= 0 {
			t.Errorf("e2e %s/%dB/coalesce=%d/%s: nonpositive throughput", p.Fabric, p.ArgsBytes, p.CoalesceN, p.Decode)
		}
		if p.WireMsgs == 0 {
			t.Errorf("e2e %s/%dB/coalesce=%d/%s: rx stats counted no wire messages", p.Fabric, p.ArgsBytes, p.CoalesceN, p.Decode)
		}
	}
	if res.GeomeanImprovement <= 0 {
		t.Errorf("e2e: geomean improvement %v, want > 0", res.GeomeanImprovement)
	}
}

func BenchmarkTaskbenchGraph(b *testing.B) {
	for _, pattern := range []taskbench.Pattern{taskbench.Stencil1D, taskbench.FFT, taskbench.Random} {
		b.Run(TaskbenchBenchName(pattern), func(b *testing.B) {
			TaskbenchGraph(b, pattern)
		})
	}
}

func BenchmarkReliableChaos(b *testing.B) {
	for _, lossPct := range []float64{0, 1, 5, 10} {
		b.Run(ReliableBenchName(lossPct), func(b *testing.B) {
			ReliableChaos(b, lossPct)
		})
	}
}

func BenchmarkReliableLinkDownDetection(b *testing.B) { ReliableLinkDownDetection(b) }

func BenchmarkSchedSpawnExecute(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		for _, stealing := range []bool{true, false} {
			b.Run(SchedBenchName("SpawnExecute", stealing, workers), func(b *testing.B) {
				SchedSpawnExecute(b, stealing, workers, 0)
			})
		}
	}
}

func BenchmarkSchedEmptyTaskLatency(b *testing.B) {
	for _, stealing := range []bool{true, false} {
		b.Run(SchedBenchName("EmptyTaskLatency", stealing, 4), func(b *testing.B) {
			SchedEmptyTaskLatency(b, stealing, 4)
		})
	}
}

func BenchmarkSchedStealImbalance(b *testing.B) {
	for _, stealing := range []bool{true, false} {
		b.Run(SchedBenchName("StealImbalance", stealing, 16), func(b *testing.B) {
			SchedStealImbalance(b, stealing, 16)
		})
	}
}

func BenchmarkSchedBackgroundStarvation(b *testing.B) {
	for _, stealing := range []bool{true, false} {
		b.Run(SchedBenchName("BackgroundStarvation", stealing, 4), func(b *testing.B) {
			SchedBackgroundStarvation(b, stealing, 4)
		})
	}
}
