// The paper's Listing 1, scaled down: two localities exchange bursts of
// parcels each carrying one complex double, in phases, and the per-phase
// network overhead is measured for two different coalescing settings so
// the effect is visible side by side.
package main

import (
	"fmt"
	"log"
	"time"

	amc "repro"
	"repro/internal/lco"
	"repro/internal/serialization"
)

const (
	numParcels = 5000
	numPhases  = 3
)

func main() {
	for _, nparcels := range []int{1, 64} {
		fmt.Printf("=== coalescing %d parcel(s) per message ===\n", nparcels)
		run(nparcels)
		fmt.Println()
	}
}

func run(nparcels int) {
	rt := amc.NewRuntime(amc.RuntimeConfig{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()

	// Listing 1's action: return a complex<double>.
	rt.MustRegisterAction("get_cplx", func(*amc.Context, []byte) ([]byte, error) {
		w := serialization.NewWriter(16)
		w.C128(complex(13.3, -23.8))
		return w.Bytes(), nil
	})
	if err := rt.EnableCoalescing("get_cplx", amc.CoalescingParams{
		NParcels: nparcels,
		Interval: 4 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}

	rec := amc.NewPhaseRecorder(rt)
	other := 1 // the remote locality, as in find_remote_localities()

	for phase := 1; phase <= numPhases; phase++ {
		vec := make([]*lco.Future[[]byte], 0, numParcels)
		for i := 0; i < numParcels; i++ {
			f, err := rt.Locality(0).Async(other, "get_cplx", nil)
			if err != nil {
				log.Fatal(err)
			}
			vec = append(vec, f)
		}
		if err := lco.WaitAll(vec); err != nil { // hpx::wait_all(vec)
			log.Fatal(err)
		}
		p := rec.EndPhase(fmt.Sprintf("phase %d", phase))
		fmt.Printf("phase %d: wall=%-12v n_oh=%.4f\n",
			phase, p.Wall.Round(time.Microsecond), p.NetworkOverhead())
	}

	// Verify the value round-tripped correctly once.
	f, err := rt.Locality(0).Async(other, "get_cplx", nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Get()
	if err != nil {
		log.Fatal(err)
	}
	r := serialization.NewReader(res)
	fmt.Printf("get_cplx() = %v\n", r.C128())
}
