// Parquet mini-run: the paper's second evaluation application, scaled to
// run in seconds. Sweeps the parcels-per-message parameter over one
// rotation+compute workload and prints the U-shaped iteration times the
// paper reports in Figure 6 (minimum away from both extremes).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps/parquet"
	"repro/internal/coalescing"
)

func main() {
	fmt.Println("parquet rotation-phase sweep (Nc=16, 3 localities, wait=4000µs)")
	fmt.Printf("%-10s %14s %14s %10s\n", "nparcels", "avg iter", "total", "n_oh")
	type row struct {
		n     int
		avg   time.Duration
		total time.Duration
	}
	var best row
	for _, n := range []int{1, 2, 4, 8, 16} {
		res, err := parquet.Run(parquet.Config{
			Localities: 3,
			Nc:         16,
			Iterations: 2,
			Params: coalescing.Params{
				NParcels: n,
				Interval: 4 * time.Millisecond,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %14v %14v %10.4f\n",
			n, res.AvgIterationWall().Round(time.Microsecond),
			res.Total.Round(time.Microsecond), res.AvgNetworkOverhead())
		if best.total == 0 || res.Total < best.total {
			best = row{n, res.AvgIterationWall(), res.Total}
		}
	}
	fmt.Printf("\nbest: %d parcels per message (paper found 4 at its scale)\n", best.n)
}
