// Components demo: globally addressable, migratable objects — the AGAS
// capability the paper's runtime substrate provides ("each object in HPX
// is assigned a Global Identifier that is maintained throughout the
// lifetime of the object even if it is moved between nodes").
//
// A distributed histogram object lives on one locality; every locality
// feeds samples to it through its GID, oblivious to where it currently
// is. Midway, the object migrates to another locality; feeding continues
// uninterrupted, with stale-routed parcels forwarded transparently.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	amc "repro"
	"repro/internal/serialization"
)

// histogram is a migratable component counting samples in ten buckets.
type histogram struct {
	mu      sync.Mutex
	buckets [10]int64
}

func (h *histogram) TypeName() string { return "demo/histogram" }

func (h *histogram) EncodeState(w *serialization.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, b := range h.buckets {
		w.Varint(b)
	}
}

func histogramFactory(r *serialization.Reader) (amc.Component, error) {
	h := &histogram{}
	for i := range h.buckets {
		h.buckets[i] = r.Varint()
	}
	return h, r.Err()
}

func (h *histogram) observe(v int64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[v%10]++
	var total int64
	for _, b := range h.buckets {
		total += b
	}
	return total
}

func main() {
	rt := amc.NewRuntime(amc.RuntimeConfig{Localities: 3, WorkersPerLocality: 2})
	defer rt.Shutdown()

	if err := rt.RegisterComponentType("demo/histogram", histogramFactory); err != nil {
		log.Fatal(err)
	}
	rt.MustRegisterComponentAction("histogram/observe", func(_ *amc.Context, target amc.Component, args []byte) ([]byte, error) {
		h := target.(*histogram)
		r := serialization.NewReader(args)
		v := r.Varint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		w := serialization.NewWriter(8)
		w.Varint(h.observe(v))
		return w.Bytes(), nil
	})

	gid, err := rt.Locality(0).NewComponent(&histogram{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram component created at locality 0 with %v\n", gid)

	observe := func(from, v int) int64 {
		w := serialization.NewWriter(8)
		w.Varint(int64(v))
		f, err := rt.Locality(from).AsyncComponent(gid, "histogram/observe", w.Bytes())
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.GetWithTimeout(10 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		r := serialization.NewReader(res)
		return r.Varint()
	}

	// Feed from every locality.
	var total int64
	for i := 0; i < 60; i++ {
		total = observe(i%3, i)
	}
	fmt.Printf("after 60 observations from 3 localities: total = %d\n", total)

	// Migrate the object while continuing to feed it.
	if err := rt.Migrate(gid, 2); err != nil {
		log.Fatal(err)
	}
	loc, _ := rt.AGAS().Resolve(gid)
	fmt.Printf("migrated: object now lives at locality %d (same GID %v)\n", loc, gid)

	for i := 0; i < 40; i++ {
		total = observe(i%3, i)
	}
	fmt.Printf("after 40 more observations: total = %d (state survived the move)\n", total)

	var forwarded int64
	for i := 0; i < rt.Localities(); i++ {
		forwarded += rt.Locality(i).ForwardedParcels()
	}
	fmt.Printf("parcels transparently forwarded after stale routing: %d\n", forwarded)
}
