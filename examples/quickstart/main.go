// Quickstart: start a two-locality runtime, register an action, enable
// message coalescing for it, make remote calls, and inspect the
// performance counters that the paper's methodology is built on.
package main

import (
	"fmt"
	"log"
	"time"

	amc "repro"
)

func main() {
	// A runtime with two localities (simulated nodes) connected by the
	// calibrated default interconnect model.
	rt := amc.NewRuntime(amc.RuntimeConfig{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()

	// An action is a function invocable from any locality (the analog of
	// HPX_PLAIN_ACTION).
	rt.MustRegisterAction("greet", func(ctx *amc.Context, args []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("hello %s, from locality %d", args, ctx.Locality)), nil
	})

	// Enable coalescing: up to 16 parcels per message, flushed after
	// 2 ms — the analog of HPX_ACTION_USES_MESSAGE_COALESCING.
	if err := rt.EnableCoalescing("greet", amc.CoalescingParams{
		NParcels: 16,
		Interval: 2 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}

	// Fire a burst of remote calls; each returns a future.
	type reply struct {
		i int
		f interface{ Get() ([]byte, error) }
	}
	var replies []reply
	for i := 0; i < 64; i++ {
		f, err := rt.Locality(0).Async(1, "greet", []byte(fmt.Sprintf("caller-%02d", i)))
		if err != nil {
			log.Fatal(err)
		}
		replies = append(replies, reply{i, f})
	}
	for _, r := range replies[:3] {
		msg, err := r.f.Get()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reply %d: %s\n", r.i, msg)
	}
	for _, r := range replies[3:] {
		if _, err := r.f.Get(); err != nil {
			log.Fatal(err)
		}
	}

	// Inspect the coalescing counters the paper introduced.
	for _, q := range []string{
		"/coalescing{locality#0}/count/parcels@greet",
		"/coalescing{locality#0}/count/messages@greet",
		"/coalescing{locality#0}/count/average-parcels-per-message@greet",
	} {
		v, err := rt.Counters().Value(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-62s = %.2f\n", q, v)
	}

	// And the headline Section III metric: Eq. 4 network overhead.
	snap := amc.Snapshot(rt)
	fmt.Printf("network overhead (Eq. 4): %.4f over %d tasks\n",
		snap.NetworkOverhead(), snap.Tasks)
}
