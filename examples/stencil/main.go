// Stencil demo: a 2-D heat-diffusion solver with fine-grained halo
// exchange — a third communication pattern (nearest-neighbor ring) beyond
// the paper's two applications. The run compares no coalescing, a static
// choice, and the adaptive overhead tuner on identical workloads, and
// verifies every variant against the serial reference solver.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/adaptive"
	"repro/internal/apps/stencil"
	"repro/internal/coalescing"
	"repro/internal/runtime"
)

func main() {
	cfg := stencil.Config{
		Localities:      3,
		RowsPerLocality: 16,
		Cols:            96,
		Steps:           80,
		ChunkCells:      4,
	}
	want := stencil.SerialReference(cfg)
	fmt.Printf("2-D heat stencil: %d×%d per locality × %d localities, %d steps, %d-cell halo chunks\n",
		cfg.RowsPerLocality, cfg.Cols, cfg.Localities, cfg.Steps, cfg.ChunkCells)
	fmt.Printf("serial reference checksum: %.6f\n\n", want)
	fmt.Printf("%-28s %12s %10s %12s %10s\n", "variant", "total", "n_oh", "messages", "correct")

	run := func(name string, params coalescing.Params, tune bool) {
		rt := runtime.New(runtime.Config{
			Localities:         cfg.Localities,
			WorkersPerLocality: 4,
		})
		defer rt.Shutdown()
		app := stencil.NewApp(rt, cfg)
		if err := rt.EnableCoalescing(stencil.Action, params); err != nil {
			log.Fatal(err)
		}
		var tuner *adaptive.OverheadTuner
		if tune {
			tuner = adaptive.NewOverheadTuner(rt, stencil.Action, adaptive.TunerConfig{
				SampleInterval: 25 * time.Millisecond,
				MaxNParcels:    64,
			})
			tuner.Start()
			defer tuner.Stop()
		}
		res, err := app.Run()
		if err != nil {
			log.Fatal(err)
		}
		oh := 0.0
		for _, p := range res.Phases {
			oh += p.NetworkOverhead()
		}
		if len(res.Phases) > 0 {
			oh /= float64(len(res.Phases))
		}
		correct := "yes"
		if res.Checksum != want {
			correct = "NO"
		}
		suffix := ""
		if tune {
			final, _ := rt.CoalescingParams(stencil.Action)
			suffix = fmt.Sprintf("  (tuner settled at nparcels=%d after %d decisions)",
				final.NParcels, len(tuner.Decisions()))
		}
		fmt.Printf("%-28s %12v %10.4f %12d %10s%s\n",
			name, res.Total.Round(time.Millisecond), oh, res.MessagesSent, correct, suffix)
	}

	run("no coalescing", coalescing.Params{NParcels: 1, Interval: 2 * time.Millisecond}, false)
	run("static nparcels=16", coalescing.Params{NParcels: 16, Interval: 2 * time.Millisecond}, false)
	run("adaptive (start at 1)", coalescing.Params{NParcels: 1, Interval: 2 * time.Millisecond}, true)
}
