// Performance-counter exploration: generates traffic with two differently
// coalesced actions, then walks the counter framework — discovery,
// wildcard queries, the five per-action coalescing counters, and the
// parcel-arrival histogram (the paper's
// /coalescing/time/parcel-arrival-histogram).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	amc "repro"
	"repro/internal/counters"
	"repro/internal/lco"
)

func main() {
	rt := amc.NewRuntime(amc.RuntimeConfig{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()

	for _, action := range []string{"dense", "sparse"} {
		rt.MustRegisterAction(action, func(*amc.Context, []byte) ([]byte, error) {
			return nil, nil
		})
	}
	// "dense" coalesces aggressively, "sparse" barely.
	if err := rt.EnableCoalescing("dense", amc.CoalescingParams{NParcels: 32, Interval: 4 * time.Millisecond}); err != nil {
		log.Fatal(err)
	}
	if err := rt.EnableCoalescing("sparse", amc.CoalescingParams{NParcels: 2, Interval: 500 * time.Microsecond}); err != nil {
		log.Fatal(err)
	}

	var futures []*lco.Future[[]byte]
	for i := 0; i < 2000; i++ {
		f, err := rt.Locality(0).Async(1, "dense", nil)
		if err != nil {
			log.Fatal(err)
		}
		futures = append(futures, f)
	}
	for i := 0; i < 200; i++ {
		f, err := rt.Locality(0).Async(1, "sparse", nil)
		if err != nil {
			log.Fatal(err)
		}
		futures = append(futures, f)
		if i%10 == 9 {
			time.Sleep(time.Millisecond) // keep this action's traffic sparse
		}
	}
	if err := lco.WaitAll(futures); err != nil {
		log.Fatal(err)
	}

	reg := rt.Counters()

	fmt.Println("— discovery (first 12 of", len(reg.Discover()), "counters) —")
	for _, name := range reg.Discover()[:12] {
		fmt.Println(" ", name)
	}

	fmt.Println("\n— the five coalescing counters, per action (locality#0) —")
	for _, action := range []string{"dense", "sparse"} {
		fmt.Printf("  action %q:\n", action)
		for _, name := range []string{
			"count/parcels", "count/messages", "count/average-parcels-per-message",
			"time/average-parcel-arrival",
		} {
			q := fmt.Sprintf("/coalescing{locality#0}/%s@%s", name, action)
			v, err := reg.Value(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-40s %10.2f\n", name, v)
		}
	}

	fmt.Println("\n— wildcard query: message counts everywhere —")
	cs, err := reg.Query("/coalescing{*}/count/messages@*")
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cs {
		if c.Value() > 0 {
			fmt.Printf("  %-64s %8.0f\n", c.Path(), c.Value())
		}
	}

	fmt.Println("\n— parcel-arrival histogram for the dense action —")
	hcs, err := reg.Query("/coalescing{locality#0}/time/parcel-arrival-histogram@dense")
	if err != nil || len(hcs) == 0 {
		log.Fatal("histogram counter missing")
	}
	h := hcs[0].(*counters.HistogramCounter)
	// Print only the populated start of the ASCII rendering.
	lines := strings.Split(h.Histogram().String(), "\n")
	for i, line := range lines {
		if i > 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
}
