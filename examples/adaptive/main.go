// Adaptive tuning demo: the capability the paper's methodology targets.
// A toy-style workload starts with coalescing effectively disabled
// (1 parcel per message); an OverheadTuner watches the instantaneous
// network-overhead counter and retunes the parameter while the
// application runs. The decision log shows the controller climbing toward
// heavier coalescing as the overhead falls.
package main

import (
	"fmt"
	"log"
	"time"

	amc "repro"
	"repro/internal/lco"
)

func main() {
	rt := amc.NewRuntime(amc.RuntimeConfig{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()

	rt.MustRegisterAction("ping", func(*amc.Context, []byte) ([]byte, error) {
		return nil, nil
	})
	start := amc.CoalescingParams{NParcels: 1, Interval: 2 * time.Millisecond}
	if err := rt.EnableCoalescing("ping", start); err != nil {
		log.Fatal(err)
	}

	tuner := amc.NewOverheadTuner(rt, "ping", amc.OverheadTunerConfig{
		SampleInterval: 25 * time.Millisecond,
		MaxNParcels:    256,
	})
	tuner.Start()
	defer tuner.Stop()

	rec := amc.NewPhaseRecorder(rt)
	for phase := 1; phase <= 4; phase++ {
		futures := make([]*lco.Future[[]byte], 0, 6000)
		for i := 0; i < 6000; i++ {
			f, err := rt.Locality(0).Async(1, "ping", nil)
			if err != nil {
				log.Fatal(err)
			}
			futures = append(futures, f)
		}
		if err := lco.WaitAll(futures); err != nil {
			log.Fatal(err)
		}
		p := rec.EndPhase(fmt.Sprintf("phase %d", phase))
		params, _ := rt.CoalescingParams("ping")
		fmt.Printf("phase %d: wall=%-12v n_oh=%.4f  current %s\n",
			phase, p.Wall.Round(time.Microsecond), p.NetworkOverhead(), params)
	}
	tuner.Stop()

	fmt.Println("\ntuner decisions:")
	for i, d := range tuner.Decisions() {
		fmt.Printf("  %2d. %s\n", i+1, d)
	}
	final, _ := rt.CoalescingParams("ping")
	fmt.Printf("\nstarted at %s, settled at %s\n", start, final)
}
