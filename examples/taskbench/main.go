// Taskbench walkthrough: the Task Bench-style parameterized workload
// subsystem (internal/taskbench) in three acts.
//
//  1. One graph, one run: a stencil_1d dependence graph executes over
//     two localities with per-step dataflow through the coalescing
//     layer, reporting wall time and the Eq. 4 network overhead.
//  2. The correlation harness: two contrasting patterns swept across a
//     coalescing grid, with the per-pattern Pearson r between overhead
//     and execution time — the paper's central claim, per pattern.
//  3. The adaptive phase demo: a stencil → fft → random sequence under
//     a live OverheadTuner, showing the tuner re-converging when the
//     communication structure changes underneath it.
//
// The committed BENCH_taskbench.json is the full-size version of acts 2
// and 3 (all eight patterns, 3×3 grid), produced by
// `go run ./cmd/amc-bench -suite taskbench`.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/coalescing"
	"repro/internal/runtime"
	"repro/internal/taskbench"
)

func main() {
	// Act 1: one graph end to end.
	rt := runtime.New(runtime.Config{Localities: 2, WorkersPerLocality: 2})
	bench, err := taskbench.New(rt, taskbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.EnableCoalescing(bench.ActionName(), coalescing.Params{
		NParcels: 16, Interval: 500 * time.Microsecond,
	}); err != nil {
		log.Fatal(err)
	}
	res, err := bench.Run(taskbench.Graph{
		Width: 16, Steps: 8, Pattern: taskbench.Stencil1D, Iterations: 64, OutputBytes: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run  %-38s wall=%-10v n_oh=%.4f tasks=%d msgs=%d parcels=%d\n\n",
		res.Graph, res.Wall.Round(time.Microsecond), res.NetworkOverhead,
		res.Tasks, res.MessagesSent, res.ParcelsSent)
	rt.Shutdown()

	// Act 2: the correlation harness on two contrasting patterns.
	reports, err := taskbench.RunSweep(taskbench.SweepConfig{
		Graph:    taskbench.Graph{Width: 32, Steps: 12, Iterations: 64, OutputBytes: 32},
		Patterns: []taskbench.Pattern{taskbench.Stencil1DPeriodic, taskbench.Random},
		Repeat:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correlation sweep (Nmsg × Tint grid per pattern):")
	for _, rep := range reports {
		fmt.Printf("  %-20s pearson r=%+.3f  best %.2fms (n=%d t=%gµs)  worst %.2fms (n=%d t=%gµs)\n",
			rep.Pattern, rep.PearsonR,
			rep.Best.WallMS, rep.Best.NParcels, rep.Best.IntervalUS,
			rep.Worst.WallMS, rep.Worst.NParcels, rep.Worst.IntervalUS)
		for _, pt := range rep.Points {
			fmt.Printf("      n=%-3d t=%6gµs  wall=%8.2fms  n_oh=%.4f  msgs=%d\n",
				pt.NParcels, pt.IntervalUS, pt.WallMS, pt.NetworkOverhead, pt.MessagesSent)
		}
	}

	// Act 3: the tuner across a pattern phase change.
	demo, err := taskbench.RunPhaseDemo(taskbench.PhaseDemoConfig{
		Graph:        taskbench.Graph{Width: 32, Steps: 12, Iterations: 64, OutputBytes: 32},
		RunsPerPhase: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadaptive phase demo (stencil_1d → fft → random under one OverheadTuner):")
	for _, ph := range demo.Phases {
		fmt.Printf("  %-12s runs=%d  final NParcels=%-4d decisions=%-3d mean n_oh=%.4f  wall=%.1fms\n",
			ph.Pattern, ph.Runs, ph.FinalNParcels, ph.Decisions, ph.MeanOverhead, ph.WallMS)
	}
	fmt.Printf("  reconverged across phases: %v (%d distinct parameter values)\n",
		demo.Reconverged, demo.DistinctNParcels)
}
